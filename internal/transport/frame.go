package transport

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// errCorruptPayload marks a frame whose header parsed but whose payload
// failed the CRC — in-flight corruption rather than a protocol
// violation. Receivers count these (NetStats.CorruptFrames) and force a
// retransmit instead of dropping the loss silently.
var errCorruptPayload = errors.New("transport: frame CRC mismatch")

// Wire framing: every unit on a transport connection is one frame — a
// fixed 36-byte little-endian header followed by an optional payload.
//
//	offset  size  field
//	0       4     magic "GRVL"
//	4       1     version (1)
//	5       1     type
//	6       2     reserved (0)
//	8       4     from node
//	12      4     to node
//	16      4     message count
//	20      4     payload length
//	24      8     sequence number
//	32      4     CRC-32 (IEEE) of the payload
//
// Data and routed-data payloads are exactly the wire-package per-node
// (or per-group) queue encodings; control frames carry no payload and
// reuse the seq field (hello: stream resume point; ack: cumulative
// acknowledged seq).
const (
	frameMagic      = 0x4C565247 // "GRVL"
	frameVersion    = 1
	headerBytes     = 36
	maxFramePayload = 1 << 24
)

type frameType uint8

const (
	// frameData carries one per-node queue (wire.MsgWireBytes records).
	frameData frameType = iota + 1
	// frameRouted carries one per-group queue (wire.RoutedMsgBytes
	// records bound for a gateway, §10).
	frameRouted
	// frameHello opens a sender→receiver stream; seq echoes the highest
	// sequence number the sender believes was delivered, and the
	// receiver's helloAck reply carries its own cumulative count so the
	// sender can trim and retransmit.
	frameHello
	// frameAck acknowledges every data frame with seq ≤ its seq field.
	frameAck
	// frameFin asks the receiver to drain and confirm with frameFinAck;
	// the graceful half of the close handshake.
	frameFin
	frameFinAck
	// framePing is a sender→receiver heartbeat; the receiver answers
	// with a cumulative frameAck, so liveness and ack progress share one
	// signal. Pings carry no payload and no sequence number.
	framePing
)

func (t frameType) valid() bool { return t >= frameData && t <= framePing }

// frame is one transport protocol unit.
type frame struct {
	typ      frameType
	from, to int
	msgs     int
	seq      uint64
	payload  []byte
}

// appendFrame encodes f onto dst and returns the extended slice. It
// panics on a payload over maxFramePayload: the receiver rejects such
// a frame as malformed, so emitting it could only poison the stream
// (and its retransmit window) — oversized buffers must fail at the
// source.
func appendFrame(dst []byte, f *frame) []byte {
	if len(f.payload) > maxFramePayload {
		panic(fmt.Sprintf("transport: %d-byte frame payload exceeds the %d-byte limit", len(f.payload), maxFramePayload))
	}
	var h [headerBytes]byte
	binary.LittleEndian.PutUint32(h[0:4], frameMagic)
	h[4] = frameVersion
	h[5] = byte(f.typ)
	binary.LittleEndian.PutUint32(h[8:12], uint32(f.from))
	binary.LittleEndian.PutUint32(h[12:16], uint32(f.to))
	binary.LittleEndian.PutUint32(h[16:20], uint32(f.msgs))
	binary.LittleEndian.PutUint32(h[20:24], uint32(len(f.payload)))
	binary.LittleEndian.PutUint64(h[24:32], f.seq)
	binary.LittleEndian.PutUint32(h[32:36], crc32.ChecksumIEEE(f.payload))
	dst = append(dst, h[:]...)
	return append(dst, f.payload...)
}

// writeFrame writes one encoded frame to w.
func writeFrame(w io.Writer, f *frame) error {
	buf := appendFrame(make([]byte, 0, headerBytes+len(f.payload)), f)
	_, err := w.Write(buf)
	return err
}

// readFrame reads and validates one frame from a stream. Malformed
// input returns an error and poisons the stream (the caller must drop
// the connection); it never panics.
func readFrame(r *bufio.Reader) (*frame, error) {
	var h [headerBytes]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return nil, err
	}
	if m := binary.LittleEndian.Uint32(h[0:4]); m != frameMagic {
		return nil, fmt.Errorf("transport: bad frame magic %#x", m)
	}
	if h[4] != frameVersion {
		return nil, fmt.Errorf("transport: unsupported frame version %d", h[4])
	}
	typ := frameType(h[5])
	if !typ.valid() {
		return nil, fmt.Errorf("transport: unknown frame type %d", h[5])
	}
	plen := binary.LittleEndian.Uint32(h[20:24])
	if plen > maxFramePayload {
		return nil, fmt.Errorf("transport: frame payload %d exceeds limit %d", plen, maxFramePayload)
	}
	f := &frame{
		typ:  typ,
		from: int(binary.LittleEndian.Uint32(h[8:12])),
		to:   int(binary.LittleEndian.Uint32(h[12:16])),
		msgs: int(binary.LittleEndian.Uint32(h[16:20])),
		seq:  binary.LittleEndian.Uint64(h[24:32]),
	}
	if plen > 0 {
		f.payload = make([]byte, plen)
		if _, err := io.ReadFull(r, f.payload); err != nil {
			return nil, err
		}
	}
	if got, want := crc32.ChecksumIEEE(f.payload), binary.LittleEndian.Uint32(h[32:36]); got != want {
		return nil, fmt.Errorf("%w (got %#x want %#x)", errCorruptPayload, got, want)
	}
	return f, nil
}

// parseFrame decodes a frame from a complete in-memory buffer (the
// loopback transport's path).
func parseFrame(b []byte) (*frame, error) {
	br := bufio.NewReader(bytes.NewReader(b))
	f, err := readFrame(br)
	if err != nil {
		return nil, err
	}
	if br.Buffered() > 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes after frame", br.Buffered())
	}
	return f, nil
}
