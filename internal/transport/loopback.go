package transport

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"gravel/internal/fabric"
	"gravel/internal/timemodel"
	"gravel/internal/wire"
)

// Loopback is an in-process transport that exercises the real framing
// path: every Send encodes a frame, queues its bytes on a bounded
// per-destination wire, and a per-node decoder validates and delivers
// it. Timing is virtual, identical to the channel fabric, so results
// are deterministic — it exists to test the codec and the
// frame-validation path under the full runtime without sockets.
type Loopback struct {
	*fabric.Metrics
	params *timemodel.Params
	clocks []*timemodel.Clocks
	banks  int

	wires []chan []byte          // encoded frames, one bounded queue per destination
	inbox [][]chan fabric.Packet // [node][bank]

	// localApply, when set, resolves from == to packets synchronously
	// (no framing round trip, no in-flight accounting).
	localApply func(fabric.Packet)

	inflight atomic.Int64
	decoders sync.WaitGroup
	closed   atomic.Bool
}

// NewLoopback creates a loopback transport over the given clocks with
// a single resolver bank.
func NewLoopback(params *timemodel.Params, clocks []*timemodel.Clocks) *Loopback {
	return NewLoopbackBanked(params, clocks, 1)
}

// NewLoopbackBanked creates a loopback transport whose decoders demux
// each validated frame into per-bank sub-packets (0 means 1 bank; must
// be a power of two, max fabric.MaxResolverBanks).
func NewLoopbackBanked(params *timemodel.Params, clocks []*timemodel.Clocks, banks int) *Loopback {
	n := len(clocks)
	if n == 0 {
		panic("transport: no nodes")
	}
	if banks == 0 {
		banks = 1
	}
	if !fabric.ValidBanks(banks) {
		panic(fmt.Sprintf("transport: resolver banks %d must be a power of two in [1, %d]", banks, fabric.MaxResolverBanks))
	}
	l := &Loopback{
		Metrics: fabric.NewMetrics(n),
		params:  params,
		clocks:  clocks,
		banks:   banks,
		wires:   make([]chan []byte, n),
		inbox:   make([][]chan fabric.Packet, n),
	}
	depth := params.QueuesPerDest * n
	if depth < 4 {
		depth = 4
	}
	for i := range l.wires {
		l.wires[i] = make(chan []byte, depth)
		l.inbox[i] = make([]chan fabric.Packet, banks)
		for b := range l.inbox[i] {
			l.inbox[i][b] = make(chan fabric.Packet, depth)
		}
	}
	l.decoders.Add(n)
	for i := 0; i < n; i++ {
		go l.decode(i)
	}
	return l
}

// Banks implements fabric.Banked.
func (l *Loopback) Banks() int { return l.banks }

// BankInbox implements fabric.Banked.
func (l *Loopback) BankInbox(node, bank int) <-chan fabric.Packet { return l.inbox[node][bank] }

// SetLocalApply implements fabric.LocalApplier. It must be called
// before the first Send.
func (l *Loopback) SetLocalApply(fn func(fabric.Packet)) { l.localApply = fn }

// Nodes returns the node count.
func (l *Loopback) Nodes() int { return len(l.inbox) }

// Hosts implements fabric.Fabric: every node lives in this process.
func (l *Loopback) Hosts(int) bool { return true }

// Send implements fabric.Fabric.
func (l *Loopback) Send(from, to int, buf []byte, msgs int) {
	l.send(&frame{typ: frameData, from: from, to: to, msgs: msgs, payload: buf})
}

// SendRouted implements fabric.Fabric.
func (l *Loopback) SendRouted(from, gateway int, buf []byte, msgs int) {
	l.send(&frame{typ: frameRouted, from: from, to: gateway, msgs: msgs, payload: buf})
}

func (l *Loopback) send(f *frame) {
	if f.to < 0 || f.to >= len(l.wires) {
		panic(fmt.Sprintf("transport: send to invalid node %d", f.to))
	}
	if f.from == f.to {
		l.SelfPkts[f.from].Inc()
		if la := l.localApply; la != nil && f.typ != frameRouted {
			// Bypass: a node-local packet skips the framing round trip
			// entirely and resolves synchronously on this goroutine.
			// The loopback codec is faithful (encode/decode round-trips
			// bit-exactly), so skipping it for self traffic cannot
			// change results — only wall time.
			la(fabric.Packet{From: f.from, To: f.to, Buf: f.payload, Msgs: f.msgs})
			wire.PutBuf(f.payload)
			return
		}
	} else {
		ns := l.params.WireNs(len(f.payload))
		l.clocks[f.from].AddWireSend(ns)
		l.clocks[f.to].AddWireRecv(ns)
		l.clocks[f.from].CountPacket(len(f.payload))
		l.ObserveWire(f.from, f.to, len(f.payload))
	}
	l.inflight.Add(1)
	// Encode into a pooled wire buffer; the encode copies the payload,
	// so the caller's buffer recycles immediately (Send owns it).
	raw := appendFrame(wire.GetBuf(headerBytes+len(f.payload)), f)
	wire.PutBuf(f.payload)
	l.wires[f.to] <- raw
}

// decode is node's wire-side decoder: it turns validated frames into
// inbox packets, dropping (and counting) anything malformed. The frame
// struct and readers are reused across packets; the decoded payload is
// a fresh pooled buffer (the raw encoding recycles as soon as it is
// parsed), so one buffer never backs two packets.
func (l *Loopback) decode(node int) {
	defer l.decoders.Done()
	defer func() {
		for _, ch := range l.inbox[node] {
			close(ch)
		}
	}()
	var (
		f  frame
		rd bytes.Reader
		br = bufio.NewReaderSize(&rd, 64<<10)
	)
	for raw := range l.wires[node] {
		rd.Reset(raw)
		br.Reset(&rd)
		err := readFrameInto(br, &f)
		if err == nil && br.Buffered() > 0 {
			err = fmt.Errorf("transport: %d trailing bytes after frame", br.Buffered())
		}
		wire.PutBuf(raw)
		if err != nil {
			if errors.Is(err, errCorruptPayload) {
				l.CorruptFrames.Inc()
			} else {
				l.Malformed.Inc()
			}
			l.inflight.Add(-1)
			continue
		}
		routed := f.typ == frameRouted
		if err := wire.CheckBuf(f.payload, routed, len(l.inbox)); err != nil {
			l.Malformed.Inc()
			l.inflight.Add(-1)
			continue
		}
		if l.banks > 1 && !routed {
			// Demux into per-bank sub-packets, counting every one in
			// flight before pushing the first (a fast bank finishing
			// early must not dip the count to zero mid-delivery). The
			// frame itself already holds one in-flight credit; adjust
			// by the difference.
			var subs [fabric.MaxResolverBanks]fabric.Packet
			nsub := 0
			fabric.ScatterBanks(f.payload, l.banks, func(bank int, sub []byte, m int) {
				subs[nsub] = fabric.Packet{From: f.from, To: node, Buf: sub, Msgs: m, Bank: bank, Sub: true}
				nsub++
			})
			wire.PutBuf(f.payload)
			l.inflight.Add(int64(nsub) - 1)
			for i := 0; i < nsub; i++ {
				l.inbox[node][subs[i].Bank] <- subs[i]
			}
			continue
		}
		l.inbox[node][0] <- fabric.Packet{From: f.from, To: node, Buf: f.payload, Msgs: f.msgs, Routed: routed}
	}
}

// Inbox implements fabric.Fabric: the node's bank-0 receive channel.
func (l *Loopback) Inbox(node int) <-chan fabric.Packet { return l.inbox[node][0] }

// Done implements fabric.Fabric: it recycles the packet's buffer and
// retires it from quiescence accounting.
func (l *Loopback) Done(p fabric.Packet) {
	l.inflight.Add(-1)
	wire.PutBuf(p.Buf)
}

// Quiet implements fabric.Fabric.
func (l *Loopback) Quiet() bool { return l.inflight.Load() == 0 }

// Close drains the decoders and closes every inbox.
func (l *Loopback) Close() {
	if !l.closed.CompareAndSwap(false, true) {
		return
	}
	for _, w := range l.wires {
		close(w)
	}
	l.decoders.Wait()
}

var (
	_ fabric.Fabric       = (*Loopback)(nil)
	_ fabric.Banked       = (*Loopback)(nil)
	_ fabric.LocalApplier = (*Loopback)(nil)
)
