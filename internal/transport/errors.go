package transport

import (
	"fmt"
	"time"
)

// PeerDownError reports that a peer node has been declared dead: either
// this process's sender made no progress toward it (no acknowledgement,
// no successful dial) for the suspect timeout while traffic was
// pending, or the coordinator stopped hearing the peer's heartbeats.
// It unwinds Step() — via the quiescence and step-barrier paths — so a
// vanished peer fails the run with a diagnosis instead of a deadlock.
type PeerDownError struct {
	// Node is the peer declared down.
	Node int
	// Detector names what noticed: "sender" (no ack progress) or
	// "coordinator" (missed heartbeats).
	Detector string
	// Silence is how long the peer had been silent when declared down.
	Silence time.Duration
}

func (e *PeerDownError) Error() string {
	return fmt.Sprintf("transport: peer node %d down (%s saw no progress for %v)",
		e.Node, e.Detector, e.Silence.Round(time.Millisecond))
}

// CoordDownError reports that the rendezvous coordinator is
// unreachable: a coordinator RPC failed or timed out. Every collective
// (join, quiescence, step barrier, reduce) depends on the coordinator,
// so the run cannot continue.
type CoordDownError struct {
	// Addr is the coordinator address.
	Addr string
	// Cause is the underlying RPC failure.
	Cause error
}

func (e *CoordDownError) Error() string {
	return fmt.Sprintf("transport: coordinator %s down: %v", e.Addr, e.Cause)
}

func (e *CoordDownError) Unwrap() error { return e.Cause }

// StaleGenerationError reports that this transport belongs to a
// membership generation the cluster has moved past: a peer or the
// coordinator is already on a newer generation and refused the
// connection or operation. The process is evicted — its state is from
// a dead epoch — so the error unwinds Step() like a failure, but the
// launcher recognizes it as membership churn rather than a crash.
type StaleGenerationError struct {
	// Have is the generation this transport was configured with.
	Have uint32
	// Want is the newer generation observed on the cluster.
	Want uint32
	// Source names what rejected us: "peer" (evict frame during the
	// stream handshake) or "coordinator" (generation-checked RPC).
	Source string
}

func (e *StaleGenerationError) Error() string {
	return fmt.Sprintf("transport: stale generation %d (cluster %s is at generation %d); evicted",
		e.Have, e.Source, e.Want)
}

// RescaleError reports a planned membership change: the coordinator
// signaled that the cluster is rescaling to a new node count, so the
// current epoch must unwind at the next collective and relaunch from
// checkpoint under the new generation. It is cooperative, not a
// failure — the launcher's elastic loop treats it as a scheduled epoch
// boundary and does not charge it against the recovery budget.
type RescaleError struct {
	// Nodes is the node count the next epoch will run with.
	Nodes int
	// Gen is the generation the coordinator will assign the new epoch.
	Gen uint32
}

func (e *RescaleError) Error() string {
	return fmt.Sprintf("transport: cluster rescaling to %d nodes (generation %d); epoch unwinding", e.Nodes, e.Gen)
}
