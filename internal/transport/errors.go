package transport

import (
	"fmt"
	"time"
)

// PeerDownError reports that a peer node has been declared dead: either
// this process's sender made no progress toward it (no acknowledgement,
// no successful dial) for the suspect timeout while traffic was
// pending, or the coordinator stopped hearing the peer's heartbeats.
// It unwinds Step() — via the quiescence and step-barrier paths — so a
// vanished peer fails the run with a diagnosis instead of a deadlock.
type PeerDownError struct {
	// Node is the peer declared down.
	Node int
	// Detector names what noticed: "sender" (no ack progress) or
	// "coordinator" (missed heartbeats).
	Detector string
	// Silence is how long the peer had been silent when declared down.
	Silence time.Duration
}

func (e *PeerDownError) Error() string {
	return fmt.Sprintf("transport: peer node %d down (%s saw no progress for %v)",
		e.Node, e.Detector, e.Silence.Round(time.Millisecond))
}

// CoordDownError reports that the rendezvous coordinator is
// unreachable: a coordinator RPC failed or timed out. Every collective
// (join, quiescence, step barrier, reduce) depends on the coordinator,
// so the run cannot continue.
type CoordDownError struct {
	// Addr is the coordinator address.
	Addr string
	// Cause is the underlying RPC failure.
	Cause error
}

func (e *CoordDownError) Error() string {
	return fmt.Sprintf("transport: coordinator %s down: %v", e.Addr, e.Cause)
}

func (e *CoordDownError) Unwrap() error { return e.Cause }
