package transport

import (
	"bufio"
	"bytes"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []*frame{
		{typ: frameData, from: 0, to: 3, msgs: 7, seq: 1, payload: []byte("hello wire")},
		{typ: frameRouted, from: 2, to: 1, msgs: 1, seq: 1 << 40, payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{typ: frameHello, from: 1, to: 0, seq: 99},
		{typ: frameAck, from: 0, to: 1, seq: 12345},
		{typ: frameFin, from: 3, to: 0},
		{typ: frameFinAck, from: 0, to: 3},
	}
	for _, want := range cases {
		var buf bytes.Buffer
		if err := writeFrame(&buf, want); err != nil {
			t.Fatalf("writeFrame(%d): %v", want.typ, err)
		}
		got, err := readFrame(bufio.NewReader(bytes.NewReader(buf.Bytes())))
		if err != nil {
			t.Fatalf("readFrame(%d): %v", want.typ, err)
		}
		if got.typ != want.typ || got.from != want.from || got.to != want.to ||
			got.msgs != want.msgs || got.seq != want.seq || !bytes.Equal(got.payload, want.payload) {
			t.Fatalf("round trip mangled frame %d: %+v != %+v", want.typ, got, want)
		}
		// The whole-buffer path must agree with the stream path.
		if _, err := parseFrame(buf.Bytes()); err != nil {
			t.Fatalf("parseFrame(%d): %v", want.typ, err)
		}
	}
}

// Oversized payloads must fail at encode time: the receiver would
// reject them as malformed, poisoning the stream's retransmit window.
func TestAppendFrameRejectsOversizedPayload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("appendFrame accepted a payload over maxFramePayload")
		}
	}()
	appendFrame(nil, &frame{typ: frameData, from: 0, to: 1, seq: 1, payload: make([]byte, maxFramePayload+1)})
}

func TestFrameRejectsMalformed(t *testing.T) {
	good := appendFrame(nil, &frame{typ: frameData, from: 0, to: 1, msgs: 1, seq: 1, payload: []byte("payload")})

	corrupt := func(mutate func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mutate(b)
		return b
	}
	cases := map[string][]byte{
		"bad magic":      corrupt(func(b []byte) { b[0] = 'X' }),
		"bad version":    corrupt(func(b []byte) { b[4] = 99 }),
		"bad type":       corrupt(func(b []byte) { b[5] = 200 }),
		"huge paylen":    corrupt(func(b []byte) { b[20], b[21], b[22], b[23] = 0xFF, 0xFF, 0xFF, 0xFF }),
		"flipped crc":    corrupt(func(b []byte) { b[32] ^= 0x01 }),
		"flipped body":   corrupt(func(b []byte) { b[headerBytes] ^= 0x01 }),
		"truncated":      good[:len(good)-3],
		"header only":    good[:headerBytes-4],
		"trailing bytes": append(append([]byte(nil), good...), 0xEE),
	}
	for name, raw := range cases {
		if _, err := parseFrame(raw); err == nil {
			t.Errorf("parseFrame accepted %s", name)
		}
	}

	// The stream path must reject the same corruptions (sans trailing
	// bytes, which a stream legitimately treats as the next frame).
	for name, raw := range cases {
		if name == "trailing bytes" {
			continue
		}
		if _, err := readFrame(bufio.NewReader(bytes.NewReader(raw))); err == nil {
			t.Errorf("readFrame accepted %s", name)
		}
	}
}
