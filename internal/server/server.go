// Package server is gravel-as-a-service: a long-lived, multi-tenant
// job service over the harness registry. It accepts cluster-run jobs
// as HTTP/JSON, queues them through internal/jobqueue (priorities,
// dedup of identical in-flight requests, bounded retries, LRU result
// cache), schedules them across a pool of warm noderun worker sets,
// and streams progress from the flight recorder. The job API shares
// the observability server, so one address serves /api/v1/... next to
// /metrics and /healthz.
package server

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"gravel/internal/jobqueue"
	"gravel/internal/noderun"
	"gravel/internal/obs"
)

// Options configure a Server. The zero value serves on an ephemeral
// port with a 2-slot pool and default queue tuning.
type Options struct {
	// Queue tunes retries and the result cache.
	Queue jobqueue.Options
	// Pool is the number of warm worker slots (default 2).
	Pool int
	// Runner executes claimed jobs (default: a noderun.Launcher whose
	// exec fabric re-execs WorkerBin). Tests inject wrappers here.
	Runner noderun.Runner
	// WorkerBin is the binary exec-fabric workers re-exec (default:
	// this executable, which must call noderun.MaybeWorkerMain).
	WorkerBin string
}

// Server is the running service.
type Server struct {
	obs     *obs.Server
	q       *jobqueue.Queue
	pool    *pool
	started time.Time

	draining     atomic.Bool
	eventStreams atomic.Int64 // live /events handlers (shutdown + tests)
	closeOnce    sync.Once
	closeErr     error
}

// New starts a server on addr (":0" picks a free port). The returned
// server is live: its pool is claiming and the HTTP API is mounted.
func New(addr string, opt Options) (*Server, error) {
	if opt.Pool < 1 {
		opt.Pool = 2
	}
	bin := opt.WorkerBin
	if opt.Runner == nil {
		if bin == "" {
			exe, err := os.Executable()
			if err != nil {
				return nil, fmt.Errorf("server: resolve worker binary: %w", err)
			}
			bin = exe
		}
		opt.Runner = &noderun.Launcher{Exe: bin}
	}
	s := &Server{q: jobqueue.New(opt.Queue), started: time.Now()}
	// The service is healthy while it can accept jobs; the per-job
	// failure story lives in job state, not the liveness probe.
	osrv, err := obs.NewServer(addr, func() error { return nil }, nil)
	if err != nil {
		s.q.Close()
		return nil, err
	}
	s.obs = osrv
	s.mountAPI()
	s.obs.AppendMetrics(s.queueMetrics)
	s.pool = newPool(s.q, opt.Runner, opt.Pool, bin)
	return s, nil
}

// queueMetrics renders the job queue's counters into every /metrics
// scrape, next to the flight recorder's sections.
func (s *Server) queueMetrics(w io.Writer) {
	st := s.q.Stats()
	g := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	c := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	g("gravel_jobs_depth", "Jobs in the heap, runnable now.", st.Depth)
	g("gravel_jobs_backoff", "Jobs waiting out a retry backoff.", st.Backoff)
	g("gravel_jobs_running", "Jobs currently executing.", st.Running)
	c("gravel_jobs_submitted_total", "Job submissions accepted.", st.Submitted)
	c("gravel_jobs_deduped_total", "Submissions folded onto identical in-flight jobs.", st.Deduped)
	c("gravel_jobs_cache_hits_total", "Submissions served from the result cache.", st.CacheHits)
	c("gravel_jobs_completed_total", "Jobs finished successfully.", st.Completed)
	c("gravel_jobs_failed_total", "Jobs terminally failed.", st.Failed)
	c("gravel_jobs_retries_total", "Failed attempts re-queued with backoff.", st.Retries)
	c("gravel_jobs_recovered_total", "In-run recoveries reported by completed elastic jobs.", st.Recovered)
	c("gravel_jobs_canceled_total", "Jobs canceled.", st.Canceled)
}

// Addr is the bound listen address.
func (s *Server) Addr() string { return s.obs.Addr() }

// Queue exposes the underlying job queue (selfbench and tests).
func (s *Server) Queue() *jobqueue.Queue { return s.q }

// Close stops the service immediately: the queue closes (canceling
// queued and running jobs), the pool parks, and the HTTP server shuts
// down. Idempotent — later calls return the first call's error.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.q.Close()
		s.pool.stop()
		s.closeErr = s.obs.Close()
	})
	return s.closeErr
}

// Shutdown drains the service gracefully: new submits are refused with
// 503 from the moment it is called, in-flight and queued jobs get up
// to deadline to finish, then everything closes (canceling whatever
// remains). This is the SIGINT/SIGTERM path of gravel-server's main.
func (s *Server) Shutdown(deadline time.Duration) error {
	s.draining.Store(true)
	idle := make(chan struct{})
	go func() {
		defer close(idle)
		for {
			st := s.q.Stats()
			if st.Depth == 0 && st.Backoff == 0 && st.Running == 0 {
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
	}()
	select {
	case <-idle:
	case <-time.After(deadline):
	}
	return s.Close()
}

// Draining reports whether Shutdown (or Close) has begun; new submits
// are refused while true.
func (s *Server) Draining() bool { return s.draining.Load() }
