// Package server is gravel-as-a-service: a long-lived, multi-tenant
// job service over the harness registry. It accepts cluster-run jobs
// as HTTP/JSON, queues them through internal/jobqueue (priorities,
// dedup of identical in-flight requests, bounded retries, LRU result
// cache), schedules them across a pool of warm noderun worker sets,
// and streams progress from the flight recorder. The job API shares
// the observability server, so one address serves /api/v1/... next to
// /metrics and /healthz.
package server

import (
	"fmt"
	"os"
	"time"

	"gravel/internal/jobqueue"
	"gravel/internal/noderun"
	"gravel/internal/obs"
)

// Options configure a Server. The zero value serves on an ephemeral
// port with a 2-slot pool and default queue tuning.
type Options struct {
	// Queue tunes retries and the result cache.
	Queue jobqueue.Options
	// Pool is the number of warm worker slots (default 2).
	Pool int
	// Runner executes claimed jobs (default: a noderun.Launcher whose
	// exec fabric re-execs WorkerBin). Tests inject wrappers here.
	Runner noderun.Runner
	// WorkerBin is the binary exec-fabric workers re-exec (default:
	// this executable, which must call noderun.MaybeWorkerMain).
	WorkerBin string
}

// Server is the running service.
type Server struct {
	obs     *obs.Server
	q       *jobqueue.Queue
	pool    *pool
	started time.Time
}

// New starts a server on addr (":0" picks a free port). The returned
// server is live: its pool is claiming and the HTTP API is mounted.
func New(addr string, opt Options) (*Server, error) {
	if opt.Pool < 1 {
		opt.Pool = 2
	}
	bin := opt.WorkerBin
	if opt.Runner == nil {
		if bin == "" {
			exe, err := os.Executable()
			if err != nil {
				return nil, fmt.Errorf("server: resolve worker binary: %w", err)
			}
			bin = exe
		}
		opt.Runner = &noderun.Launcher{Exe: bin}
	}
	s := &Server{q: jobqueue.New(opt.Queue), started: time.Now()}
	// The service is healthy while it can accept jobs; the per-job
	// failure story lives in job state, not the liveness probe.
	osrv, err := obs.NewServer(addr, func() error { return nil }, nil)
	if err != nil {
		s.q.Close()
		return nil, err
	}
	s.obs = osrv
	s.mountAPI()
	s.pool = newPool(s.q, opt.Runner, opt.Pool, bin)
	return s, nil
}

// Addr is the bound listen address.
func (s *Server) Addr() string { return s.obs.Addr() }

// Queue exposes the underlying job queue (selfbench and tests).
func (s *Server) Queue() *jobqueue.Queue { return s.q }

// Close drains the service: the queue closes (canceling queued and
// running jobs), the pool parks, and the HTTP server shuts down.
func (s *Server) Close() error {
	s.q.Close()
	s.pool.stop()
	return s.obs.Close()
}
