package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"gravel/internal/jobqueue"
	"gravel/internal/noderun"
	"gravel/internal/obs"
)

// TestMain lets this test binary double as the exec-fabric worker the
// service re-execs for cluster jobs. The flight recorder mirrors what
// gravel-server's main starts, so /metrics and the events stream have
// a live recorder behind them.
func TestMain(m *testing.M) {
	noderun.MaybeWorkerMain()
	obs.Start(obs.Options{})
	code := m.Run()
	obs.Stop()
	os.Exit(code)
}

func testExe(t *testing.T) string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("executable: %v", err)
	}
	return exe
}

func startServer(t *testing.T, opt Options) *Server {
	t.Helper()
	if opt.WorkerBin == "" {
		opt.WorkerBin = testExe(t)
	}
	s, err := New("127.0.0.1:0", opt)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func submit(t *testing.T, base string, req SubmitRequest) SubmitResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, raw)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	return sub
}

func waitDone(t *testing.T, base, id string) jobqueue.View {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id + "?wait=60s")
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	defer resp.Body.Close()
	var view jobqueue.View
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decode wait %s: %v", id, err)
	}
	if !view.State.Terminal() {
		t.Fatalf("job %s not terminal after wait: %s", id, view.State)
	}
	return view
}

// refCheck runs the spec on the single-process chan fabric — the same
// path as a direct `gravel-node -fabric local` run — and returns its
// checksum.
func refCheck(t *testing.T, spec noderun.Spec) uint64 {
	t.Helper()
	spec.Fabric = noderun.FabricLocal
	ref, err := noderun.RunLocal(spec.Normalized())
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return ref.Check
}

// TestServiceEndToEnd is the acceptance gate: concurrent HTTP
// submissions of mixed apps over real cluster fabrics complete with
// checksums bit-identical to direct single-process runs.
func TestServiceEndToEnd(t *testing.T) {
	s := startServer(t, Options{Pool: 3})
	base := "http://" + s.Addr()

	reqs := []SubmitRequest{
		{App: "gups", Model: "gravel", Nodes: 3, Fabric: "tcp", Scale: 0.02, Seed: 11},
		{App: "gups", Model: "coprocessor", Nodes: 3, Fabric: "tcp", Scale: 0.02, Seed: 12},
		{App: "pagerank", Model: "gravel", Nodes: 3, Fabric: "tcp", Scale: 0.02, Seed: 13, Verts: 512, Iters: 2},
		{App: "kmeans", Model: "gravel", Nodes: 3, Fabric: "tcp", Scale: 0.02, Seed: 14},
		{App: "mer", Model: "gravel", Nodes: 3, Fabric: "tcp", Scale: 0.02, Seed: 15},
		// One job through the exec fabric: forked OS processes
		// re-execing this test binary.
		{App: "gups", Model: "gravel", Nodes: 3, Fabric: "exec", Scale: 0.02, Seed: 16},
	}

	var wg sync.WaitGroup
	views := make([]jobqueue.View, len(reqs))
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req SubmitRequest) {
			defer wg.Done()
			sub := submit(t, base, req)
			views[i] = waitDone(t, base, sub.Job.ID)
		}(i, req)
	}
	wg.Wait()

	for i, view := range views {
		if view.State != jobqueue.StateDone {
			t.Errorf("job %d (%s/%s): state %s err %q", i, reqs[i].App, reqs[i].Fabric, view.State, view.Err)
			continue
		}
		if view.Result == nil {
			t.Errorf("job %d: done without result", i)
			continue
		}
		if want := refCheck(t, reqs[i].Spec()); view.Result.Check != want {
			t.Errorf("job %d (%s over %s): check %#x != direct-run reference %#x",
				i, reqs[i].App, reqs[i].Fabric, view.Result.Check, want)
		}
	}
}

// gateRunner wraps a Runner, counting executions and optionally holding
// them at the gate so tests can observe in-flight state.
type gateRunner struct {
	inner   noderun.Runner
	gate    chan struct{} // if non-nil, Run blocks until closed
	started chan struct{} // buffered; signaled when a run begins

	mu   sync.Mutex
	runs int
}

func (g *gateRunner) Run(ctx context.Context, spec noderun.Spec) (*noderun.RunResult, error) {
	g.mu.Lock()
	g.runs++
	g.mu.Unlock()
	if g.started != nil {
		select {
		case g.started <- struct{}{}:
		default:
		}
	}
	if g.gate != nil {
		select {
		case <-g.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return g.inner.Run(ctx, spec)
}

func (g *gateRunner) count() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.runs
}

// TestDedupAndCache covers the two absorption paths: identical
// in-flight submissions fold onto one execution, and a repeated
// completed request is served from the cache without spawning anything.
func TestDedupAndCache(t *testing.T) {
	runner := &gateRunner{
		inner:   &noderun.Launcher{Exe: testExe(t)},
		gate:    make(chan struct{}),
		started: make(chan struct{}, 1),
	}
	s := startServer(t, Options{Pool: 2, Runner: runner})
	base := "http://" + s.Addr()

	req := SubmitRequest{App: "gups", Model: "gravel", Nodes: 3, Fabric: "tcp", Scale: 0.02, Seed: 77}
	first := submit(t, base, req)
	if first.Outcome != jobqueue.OutcomeQueued {
		t.Fatalf("first submit: outcome %s, want queued", first.Outcome)
	}
	<-runner.started // execution has begun and is held at the gate

	second := submit(t, base, req)
	if second.Outcome != jobqueue.OutcomeDeduped {
		t.Fatalf("identical in-flight submit: outcome %s, want deduped", second.Outcome)
	}
	if second.Job.ID != first.Job.ID {
		t.Fatalf("dedup produced a different job: %s vs %s", second.Job.ID, first.Job.ID)
	}

	close(runner.gate)
	view := waitDone(t, base, first.Job.ID)
	if view.State != jobqueue.StateDone {
		t.Fatalf("job %s: state %s err %q", view.ID, view.State, view.Err)
	}
	if got := runner.count(); got != 1 {
		t.Fatalf("deduped pair executed %d times, want 1", got)
	}

	// The same request again, now completed: a cache hit, done at
	// submit time, nothing launched.
	third := submit(t, base, req)
	if third.Outcome != jobqueue.OutcomeCached {
		t.Fatalf("repeat of completed request: outcome %s, want cached", third.Outcome)
	}
	if third.Job.State != jobqueue.StateDone || third.Job.Result == nil {
		t.Fatalf("cached job not done-with-result: state %s", third.Job.State)
	}
	if third.Job.Result.Check != view.Result.Check {
		t.Fatalf("cached check %#x != original %#x", third.Job.Result.Check, view.Result.Check)
	}
	if got := runner.count(); got != 1 {
		t.Fatalf("cache hit spawned a run: %d executions, want 1", got)
	}
}

// killOnceRunner sabotages a job's first execution by killing worker 1
// mid-run; later attempts run clean. It exercises the service's retry
// path end to end on the exec fabric.
type killOnceRunner struct {
	exe string

	mu    sync.Mutex
	calls int
}

func (k *killOnceRunner) Run(ctx context.Context, spec noderun.Spec) (*noderun.RunResult, error) {
	k.mu.Lock()
	k.calls++
	sabotage := k.calls == 1
	k.mu.Unlock()
	// Tight failure detection so the sabotaged attempt fails in
	// fractions of a second instead of the production timeouts. These
	// knobs do not affect the result checksum.
	spec.Suspect = 500 * time.Millisecond
	spec.Heartbeat = 100 * time.Millisecond
	spec.CoordTimeout = 3 * time.Second
	spec.CoordRPCTimeout = time.Second
	l := &noderun.Launcher{Exe: k.exe}
	if sabotage {
		l.Hooks.WorkerStarted = func(node int, kill func()) {
			if node == 1 {
				go func() {
					time.Sleep(50 * time.Millisecond)
					kill()
				}()
			}
		}
	}
	return l.Run(ctx, spec)
}

// TestKillWorkerRetried: a job whose worker dies mid-run is retried by
// the queue and still returns the correct checksum.
func TestKillWorkerRetried(t *testing.T) {
	runner := &killOnceRunner{exe: testExe(t)}
	s := startServer(t, Options{
		Pool:   1,
		Queue:  jobqueue.Options{MaxRetries: 2, RetryBackoff: 20 * time.Millisecond},
		Runner: runner,
	})
	base := "http://" + s.Addr()

	// Enough steps that the kill lands mid-run rather than after the
	// victim already finished.
	req := SubmitRequest{App: "gups", Model: "gravel", Nodes: 3, Fabric: "exec", Scale: 0.02, Seed: 99, Steps: 20}
	sub := submit(t, base, req)
	view := waitDone(t, base, sub.Job.ID)
	if view.State != jobqueue.StateDone {
		t.Fatalf("job %s: state %s err %q (attempts %d)", view.ID, view.State, view.Err, view.Attempts)
	}
	runner.mu.Lock()
	calls := runner.calls
	runner.mu.Unlock()
	if calls < 2 {
		// The kill can lose the race with a fast run; that is still a
		// correct completion, but the retry path went unexercised.
		t.Logf("worker kill lost the race (1 attempt); retry path not exercised this run")
	} else if view.Attempts < 2 {
		t.Fatalf("runner ran %d times but job records %d attempts", calls, view.Attempts)
	}
	if want := refCheck(t, req.Spec()); view.Result.Check != want {
		t.Fatalf("retried job check %#x != reference %#x", view.Result.Check, want)
	}
}

// TestAPISurface walks the remaining endpoints: registry, list, admin
// queue/workers, cancel, events stream, and the shared /healthz and
// /metrics.
func TestAPISurface(t *testing.T) {
	runner := &gateRunner{
		inner:   &noderun.Launcher{Exe: testExe(t)},
		gate:    make(chan struct{}),
		started: make(chan struct{}, 1),
	}
	s := startServer(t, Options{Pool: 1, Runner: runner})
	base := "http://" + s.Addr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	if code, body := get("/api/v1/registry"); code != 200 || !strings.Contains(body, "gups") {
		t.Fatalf("registry: code %d body %.120s", code, body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "\"ok\"") {
		t.Fatalf("healthz: code %d body %.120s", code, body)
	}

	// Occupy the single slot, then queue a second job behind it.
	running := submit(t, base, SubmitRequest{App: "gups", Nodes: 3, Fabric: "tcp", Scale: 0.02, Seed: 1})
	<-runner.started
	queued := submit(t, base, SubmitRequest{App: "gups", Nodes: 3, Fabric: "tcp", Scale: 0.02, Seed: 2})

	var admin AdminQueue
	if code, body := get("/api/v1/admin/queue"); code != 200 {
		t.Fatalf("admin/queue: code %d", code)
	} else if err := json.Unmarshal([]byte(body), &admin); err != nil {
		t.Fatalf("admin/queue decode: %v", err)
	}
	if admin.Queue.Depth != 1 || admin.Queue.Running != 1 {
		t.Fatalf("admin/queue: depth=%d running=%d, want 1/1", admin.Queue.Depth, admin.Queue.Running)
	}

	var workers PoolView
	if _, body := get("/api/v1/admin/workers"); true {
		if err := json.Unmarshal([]byte(body), &workers); err != nil {
			t.Fatalf("admin/workers decode: %v", err)
		}
	}
	if workers.Size != 1 || !workers.Slots[0].Busy || workers.Slots[0].JobID != running.Job.ID {
		t.Fatalf("admin/workers: %+v, want slot 0 busy on %s", workers, running.Job.ID)
	}

	if code, body := get("/api/v1/jobs"); code != 200 || !strings.Contains(body, running.Job.ID) || !strings.Contains(body, queued.Job.ID) {
		t.Fatalf("jobs list: code %d body %.200s", code, body)
	}

	// Cancel the queued job before it ever runs.
	creq, _ := http.NewRequest(http.MethodDelete, base+"/api/v1/jobs/"+queued.Job.ID, nil)
	cresp, err := http.DefaultClient.Do(creq)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	var canceled jobqueue.View
	json.NewDecoder(cresp.Body).Decode(&canceled)
	cresp.Body.Close()
	if canceled.State != jobqueue.StateCanceled {
		t.Fatalf("cancel: state %s, want canceled", canceled.State)
	}

	// Stream the running job's events while releasing the gate; the
	// stream must end with a done frame.
	type frame struct {
		Type  string         `json:"type"`
		State jobqueue.State `json:"state"`
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/api/v1/jobs/" + running.Job.ID + "/events")
		if err != nil {
			done <- err
			return
		}
		defer resp.Body.Close()
		dec := json.NewDecoder(resp.Body)
		sawTransition := false
		for {
			var f frame
			if err := dec.Decode(&f); err != nil {
				done <- fmt.Errorf("stream ended without done frame: %w", err)
				return
			}
			if f.Type == "transition" {
				sawTransition = true
			}
			if f.Type == "done" {
				if !sawTransition {
					done <- fmt.Errorf("done frame with no transitions")
					return
				}
				if f.State != jobqueue.StateDone {
					done <- fmt.Errorf("done frame state %s", f.State)
					return
				}
				done <- nil
				return
			}
		}
	}()
	close(runner.gate)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("events stream: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("events stream did not finish")
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "gravel_trace_events_total") {
		t.Fatalf("metrics: code %d body %.120s", code, body)
	}

	if code, _ := get("/api/v1/jobs/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown job: code %d, want 404", code)
	}
}

// TestShutdownDrains pins the graceful-shutdown contract: once
// Shutdown begins, new submits are refused with 503, but the in-flight
// job is given time to finish and completes with a result instead of
// being canceled.
func TestShutdownDrains(t *testing.T) {
	runner := &gateRunner{
		inner:   &noderun.Launcher{Exe: testExe(t)},
		gate:    make(chan struct{}),
		started: make(chan struct{}, 1),
	}
	s := startServer(t, Options{Pool: 1, Runner: runner})
	base := "http://" + s.Addr()

	req := SubmitRequest{App: "gups", Model: "gravel", Nodes: 2, Fabric: "tcp", Scale: 0.02, Seed: 41}
	first := submit(t, base, req)
	<-runner.started

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(30 * time.Second) }()
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("Shutdown never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	req.Seed = 42
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit during drain: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", resp.StatusCode)
	}

	close(runner.gate)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	view, ok := s.Queue().Get(first.Job.ID)
	if !ok || view.State != jobqueue.StateDone || view.Result == nil {
		t.Fatalf("drained job = %+v, want done with a result", view)
	}
}

// TestEventsStreamKeepalive pins the idle-stream contract: while a job
// runs without emitting transitions, the NDJSON stream must carry
// periodic keepalive frames so proxies and clients see a live
// connection.
func TestEventsStreamKeepalive(t *testing.T) {
	savedKeep := eventsKeepalive
	eventsKeepalive = 50 * time.Millisecond
	defer func() { eventsKeepalive = savedKeep }()

	runner := &gateRunner{
		inner:   &noderun.Launcher{Exe: testExe(t)},
		gate:    make(chan struct{}),
		started: make(chan struct{}, 1),
	}
	s := startServer(t, Options{Pool: 1, Runner: runner})
	base := "http://" + s.Addr()
	first := submit(t, base, SubmitRequest{App: "gups", Model: "gravel", Nodes: 2, Fabric: "tcp", Scale: 0.02, Seed: 43})
	<-runner.started
	defer close(runner.gate)

	resp, err := http.Get(base + "/api/v1/jobs/" + first.Job.ID + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var e Event
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("decoding event stream: %v", err)
		}
		if e.Type == "keepalive" {
			if e.JobID != first.Job.ID || e.State != jobqueue.StateRunning {
				t.Fatalf("keepalive frame = %+v", e)
			}
			return
		}
	}
	t.Fatal("no keepalive frame within 10s on an idle running job")
}

// TestEventsHungReaderEvicted pins the cleanup contract: a client that
// opens the events stream and then stops reading (connection alive,
// nothing consumed) must not pin the handler — the per-write deadline
// evicts it once the socket buffers fill.
func TestEventsHungReaderEvicted(t *testing.T) {
	savedTick, savedKeep, savedTimeout := eventsTick, eventsKeepalive, eventsWriteTimeout
	eventsTick = time.Millisecond
	eventsKeepalive = time.Millisecond
	eventsWriteTimeout = 300 * time.Millisecond
	defer func() { eventsTick, eventsKeepalive, eventsWriteTimeout = savedTick, savedKeep, savedTimeout }()

	runner := &gateRunner{
		inner:   &noderun.Launcher{Exe: testExe(t)},
		gate:    make(chan struct{}),
		started: make(chan struct{}, 1),
	}
	s := startServer(t, Options{Pool: 1, Runner: runner})
	base := "http://" + s.Addr()
	first := submit(t, base, SubmitRequest{App: "gups", Model: "gravel", Nodes: 2, Fabric: "tcp", Scale: 0.02, Seed: 44})
	<-runner.started
	defer close(runner.gate)

	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Clamp the receive buffer so the TCP window closes after a few KB
	// instead of autotuning to megabytes — otherwise the kernel absorbs
	// the stream for minutes before the server's write ever blocks.
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetReadBuffer(4096)
	}
	fmt.Fprintf(conn, "GET /api/v1/jobs/%s/events HTTP/1.1\r\nHost: gravel\r\n\r\n", first.Job.ID)
	// Deliberately never read: the stream backs up into the socket
	// buffers until the server's write deadline trips.

	deadline := time.Now().Add(5 * time.Second)
	for s.eventStreams.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("events handler never started")
		}
		time.Sleep(time.Millisecond)
	}
	deadline = time.Now().Add(30 * time.Second)
	for s.eventStreams.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("hung reader still pins the events handler after 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = base
}
