// The HTTP/JSON surface: submit, poll, stream, cancel, list, admin.
// Everything mounts on the shared observability server, so a single
// address serves the job API next to /metrics and /healthz.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"gravel/internal/harness"
	"gravel/internal/jobqueue"
	"gravel/internal/noderun"
	"gravel/internal/obs"
)

// SubmitRequest is the POST /api/v1/jobs body. Zero-valued workload
// parameters resolve to the app's registered defaults, exactly like
// the gravel-node flag surface.
type SubmitRequest struct {
	App       string  `json:"app"`
	Model     string  `json:"model"`
	Nodes     int     `json:"nodes"`
	Fabric    string  `json:"fabric"`
	Scale     float64 `json:"scale"`
	Seed      uint64  `json:"seed"`
	Table     int     `json:"table"`
	Updates   int     `json:"updates"`
	Steps     int     `json:"steps"`
	Verts     int     `json:"verts"`
	Iters     int     `json:"iters"`
	Faults    string  `json:"faults"`
	WallClock bool    `json:"wall_clock"`
	Priority  int     `json:"priority"`
}

// Spec maps the request onto a noderun Spec.
func (r SubmitRequest) Spec() noderun.Spec {
	s := noderun.Spec{
		App:       r.App,
		Model:     r.Model,
		Nodes:     r.Nodes,
		Fabric:    r.Fabric,
		Faults:    r.Faults,
		WallClock: r.WallClock,
	}
	s.Params.Scale = r.Scale
	s.Params.Seed = r.Seed
	s.Params.Table = r.Table
	s.Params.Updates = r.Updates
	s.Params.Steps = r.Steps
	s.Params.Verts = r.Verts
	s.Params.Iters = r.Iters
	return s
}

// SubmitResponse tells the submitter which job to poll and how the
// request was absorbed: queued, deduped onto an identical in-flight
// job, or served from the result cache.
type SubmitResponse struct {
	Outcome jobqueue.Outcome `json:"outcome"`
	Job     jobqueue.View    `json:"job"`
}

// AdminQueue is the GET /api/v1/admin/queue document.
type AdminQueue struct {
	Queue    jobqueue.Stats `json:"queue"`
	UptimeNs int64          `json:"uptime_ns"`
}

func (s *Server) mountAPI() {
	s.obs.Handle("POST /api/v1/jobs", http.HandlerFunc(s.handleSubmit))
	s.obs.Handle("GET /api/v1/jobs", http.HandlerFunc(s.handleJobs))
	s.obs.Handle("GET /api/v1/jobs/{id}", http.HandlerFunc(s.handleJob))
	s.obs.Handle("GET /api/v1/jobs/{id}/events", http.HandlerFunc(s.handleEvents))
	s.obs.Handle("DELETE /api/v1/jobs/{id}", http.HandlerFunc(s.handleCancel))
	s.obs.Handle("GET /api/v1/registry", http.HandlerFunc(handleRegistry))
	s.obs.Handle("GET /api/v1/admin/queue", http.HandlerFunc(s.handleAdminQueue))
	s.obs.Handle("GET /api/v1/admin/workers", http.HandlerFunc(s.handleAdminWorkers))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Err string `json:"err"`
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Err: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, errors.New("server draining: not accepting new jobs"))
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad submit body: %w", err))
		return
	}
	view, outcome, err := s.q.Submit(req.Spec(), req.Priority)
	if err != nil {
		code := http.StatusBadRequest
		if err == jobqueue.ErrClosed {
			code = http.StatusServiceUnavailable
		}
		writeErr(w, code, err)
		return
	}
	code := http.StatusAccepted
	if outcome == jobqueue.OutcomeCached {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{Outcome: outcome, Job: view})
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.q.List())
}

// handleJob returns one job's snapshot. ?wait=DURATION blocks until
// the job is terminal or the duration expires — the long-poll the CI
// smoke and simple clients use instead of a poll loop.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad wait: %w", err))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		if view, ok := s.q.Wait(ctx, id); ok {
			writeJSON(w, http.StatusOK, view)
			return
		}
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	view, ok := s.q.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok := s.q.Cancel(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func handleRegistry(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, harness.List())
}

func (s *Server) handleAdminQueue(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, AdminQueue{
		Queue:    s.q.Stats(),
		UptimeNs: time.Since(s.started).Nanoseconds(),
	})
}

func (s *Server) handleAdminWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.pool.view())
}

// Event is one frame of the progress stream (JSON lines on
// /api/v1/jobs/{id}/events): job transitions as they happen,
// interleaved with flight-recorder counter deltas while the job runs,
// periodic keepalives when nothing else flows, closed by a terminal
// frame.
type Event struct {
	Type  string         `json:"type"` // "transition" | "stats" | "keepalive" | "done"
	JobID string         `json:"job_id"`
	State jobqueue.State `json:"state,omitempty"`
	// Transition carries one new history entry (type "transition").
	Transition *jobqueue.Transition `json:"transition,omitempty"`
	// Recorder carries per-interval deltas of the flight recorder's
	// exact per-kind counters (type "stats"; only nonzero deltas).
	Recorder map[string]int64 `json:"recorder,omitempty"`
}

// Stream pacing. Vars, not consts, so tests can shrink them: the
// keepalive period bounds how long an idle stream stays silent, and
// the write timeout bounds how long a hung reader (a client that keeps
// the connection open but stops consuming) can pin a handler before it
// is evicted.
var (
	eventsTick         = 150 * time.Millisecond
	eventsKeepalive    = 10 * time.Second
	eventsWriteTimeout = 10 * time.Second
)

// handleEvents streams a job's progress as JSON lines until it reaches
// a terminal state or the client goes away. Idle periods are bridged
// with keepalive frames; every write carries a deadline so a reader
// that stops consuming is disconnected instead of pinning the handler
// (and its buffers) forever.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.q.Get(id); !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	s.eventStreams.Add(1)
	defer s.eventStreams.Add(-1)
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	lastEmit := time.Now()
	emit := func(e Event) bool {
		rc.SetWriteDeadline(time.Now().Add(eventsWriteTimeout))
		if err := enc.Encode(e); err != nil {
			return false
		}
		if err := rc.Flush(); err != nil {
			return false
		}
		lastEmit = time.Now()
		return true
	}

	sent := 0 // history entries already streamed
	last := recorderCounts()
	ticker := time.NewTicker(eventsTick)
	defer ticker.Stop()
	statsEvery := 0
	for {
		view, ok := s.q.Get(id)
		if !ok {
			return
		}
		for ; sent < len(view.History); sent++ {
			tr := view.History[sent]
			if !emit(Event{Type: "transition", JobID: id, State: tr.State, Transition: &tr}) {
				return
			}
		}
		if view.State.Terminal() {
			emit(Event{Type: "done", JobID: id, State: view.State})
			return
		}
		// Roughly once a second, stream what the flight recorder saw
		// since the last frame.
		if statsEvery++; statsEvery%7 == 0 {
			cur := recorderCounts()
			if delta := countsDelta(last, cur); len(delta) > 0 {
				if !emit(Event{Type: "stats", JobID: id, State: view.State, Recorder: delta}) {
					return
				}
			}
			last = cur
		}
		if time.Since(lastEmit) >= eventsKeepalive {
			if !emit(Event{Type: "keepalive", JobID: id, State: view.State}) {
				return
			}
		}
		select {
		case <-ticker.C:
		case <-r.Context().Done():
			return
		case <-s.q.Done(id):
		}
	}
}

func recorderCounts() map[string]int64 {
	if rec := obs.Active(); rec != nil {
		return rec.Counts()
	}
	return nil
}

func countsDelta(prev, cur map[string]int64) map[string]int64 {
	if cur == nil {
		return nil
	}
	delta := make(map[string]int64)
	for k, v := range cur {
		if d := v - prev[k]; d != 0 {
			delta[k] = d
		}
	}
	return delta
}
