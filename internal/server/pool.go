package server

import (
	"context"
	"sync"
	"time"

	"gravel/internal/jobqueue"
	"gravel/internal/noderun"
)

// SlotView is one worker slot's admin snapshot.
type SlotView struct {
	ID    int    `json:"id"`
	Busy  bool   `json:"busy"`
	JobID string `json:"job_id,omitempty"`
	// BusyNs is how long the current job has been running (0 when
	// idle).
	BusyNs   int64 `json:"busy_ns,omitempty"`
	Runs     int64 `json:"runs"`
	Failures int64 `json:"failures"`
}

// PoolView is the worker pool's admin snapshot.
type PoolView struct {
	Size      int        `json:"size"`
	WorkerBin string     `json:"worker_bin,omitempty"`
	Slots     []SlotView `json:"slots"`
}

// pool is a fixed set of warm worker slots multiplexing queued jobs
// onto a shared Runner. "Warm" is literal: the worker binary is
// resolved once at startup and every slot's scheduling goroutine stays
// parked on the queue, so a job's spawn cost is only its own cluster,
// never service setup.
type pool struct {
	q      *jobqueue.Queue
	runner noderun.Runner
	bin    string

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu    sync.Mutex
	slots []slot
}

type slot struct {
	busy     bool
	jobID    string
	started  time.Time
	runs     int64
	failures int64
}

func newPool(q *jobqueue.Queue, runner noderun.Runner, size int, bin string) *pool {
	if size < 1 {
		size = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &pool{q: q, runner: runner, bin: bin, ctx: ctx, cancel: cancel, slots: make([]slot, size)}
	for i := 0; i < size; i++ {
		p.wg.Add(1)
		go p.loop(i)
	}
	return p
}

// loop is one slot's scheduling cycle: claim, run, settle, repeat
// until the pool stops.
func (p *pool) loop(i int) {
	defer p.wg.Done()
	for {
		j, runCtx, err := p.q.Claim(p.ctx)
		if err != nil {
			return // pool stopped or queue closed
		}
		p.mu.Lock()
		p.slots[i].busy = true
		p.slots[i].jobID = j.ID()
		p.slots[i].started = time.Now()
		p.mu.Unlock()

		res, err := p.runner.Run(runCtx, j.Spec())

		p.mu.Lock()
		p.slots[i].busy = false
		p.slots[i].jobID = ""
		p.slots[i].runs++
		if err != nil {
			p.slots[i].failures++
		}
		p.mu.Unlock()

		if err != nil {
			p.q.Fail(j, err)
		} else {
			p.q.Complete(j, res)
		}
	}
}

// stop parks the pool: no new claims; running jobs finish or are
// canceled by the queue's Close.
func (p *pool) stop() {
	p.cancel()
	p.wg.Wait()
}

func (p *pool) view() PoolView {
	p.mu.Lock()
	defer p.mu.Unlock()
	v := PoolView{Size: len(p.slots), WorkerBin: p.bin}
	now := time.Now()
	for i, s := range p.slots {
		sv := SlotView{ID: i, Busy: s.busy, JobID: s.jobID, Runs: s.runs, Failures: s.failures}
		if s.busy {
			sv.BusyNs = now.Sub(s.started).Nanoseconds()
		}
		v.Slots = append(v.Slots, sv)
	}
	return v
}
