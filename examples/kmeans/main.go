// Distributed k-means clustering (the paper's kmeans workload): points
// live on their generating node; cluster accumulators are distributed
// by cluster ID and updated exclusively with fine-grain atomic
// increments, so with k = nodes each node owns one cluster and ~ (k-1)/k
// of all updates are remote.
package main

import (
	"fmt"

	"gravel"
)

const (
	nodes   = 4
	perNode = 50_000
	k       = 4
	dims    = 2
	iters   = 6
	fx      = 1 << 20 // Q.20 fixed-point coordinates in [0,1)
)

func hash(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// coord generates coordinate d of point (node, i): a planted cluster
// center plus bounded noise.
func coord(node, i, d int) uint64 {
	h := hash(uint64(node)<<40 ^ uint64(i))
	c := h % k
	center := (2*c + 1) * fx / (2 * k)
	noise := hash(h^uint64(d)<<32) % (fx / (2 * k))
	return center + noise - fx/(4*k)
}

func main() {
	sys := gravel.New(gravel.Config{Nodes: nodes})
	defer sys.Close()

	sum := sys.Space().Alloc(k * dims) // cluster c owns [c*dims, c*dims+dims)
	cnt := sys.Space().Alloc(k)

	cent := make([]uint64, k*dims)
	for c := 0; c < k; c++ {
		for d := 0; d < dims; d++ {
			cent[c*dims+d] = uint64(2*c+1) * fx / (2 * k)
		}
	}

	grid := make([]int, nodes)
	for i := range grid {
		grid[i] = perNode
	}

	for it := 0; it < iters; it++ {
		snap := append([]uint64(nil), cent...)
		sys.Step("assign", grid, 0, func(ctx gravel.Ctx) {
			g := ctx.Group()
			node := ctx.Node()
			cl := make([]uint64, g.Size)
			one := make([]uint64, g.Size)
			idx := make([]uint64, g.Size)
			val := make([]uint64, g.Size)
			// Nearest centroid: k*dims distance terms per point.
			g.VectorN(2*k*dims, func(l int) {
				i := g.GlobalID(l)
				best, bestD := 0, ^uint64(0)
				for c := 0; c < k; c++ {
					var dist uint64
					for d := 0; d < dims; d++ {
						diff := int64(coord(node, i, d)) - int64(snap[c*dims+d])
						dist += uint64(diff * diff)
					}
					if dist < bestD {
						bestD, best = dist, c
					}
				}
				cl[l] = uint64(best)
				one[l] = 1
			})
			for d := 0; d < dims; d++ {
				dd := d
				g.Vector(func(l int) {
					idx[l] = cl[l]*dims + uint64(dd)
					val[l] = coord(node, g.GlobalID(l), dd)
				})
				ctx.Inc(sum, idx, val, nil)
			}
			ctx.Inc(cnt, cl, one, nil)
		})

		// Host: recompute centroids, reset accumulators.
		for c := 0; c < k; c++ {
			n := cnt.Load(uint64(c))
			if n == 0 {
				continue
			}
			for d := 0; d < dims; d++ {
				cent[c*dims+d] = sum.Load(uint64(c*dims+d)) / n
			}
		}
		sum.Fill(0)
		cnt.Fill(0)
	}

	fmt.Printf("k-means: %d points, k=%d, %d iterations on %d nodes\n",
		nodes*perNode, k, iters, nodes)
	for c := 0; c < k; c++ {
		fmt.Printf("  centroid %d: (%.4f, %.4f)  planted (%.4f, %.4f)\n", c,
			float64(cent[c*dims])/fx, float64(cent[c*dims+1])/fx,
			float64(2*c+1)/(2*k), float64(2*c+1)/(2*k))
	}
	st := sys.NetStats()
	fmt.Printf("virtual time %.3f ms, remote %.1f%% (want ≈ %.1f%%)\n",
		sys.VirtualTimeNs()/1e6, 100*st.RemoteFrac(), 100*float64(k-1)/float64(k))
}
