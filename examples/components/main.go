// Connected components via the graphlib vertex-centric layer (the
// GasCL-style substrate the paper's graph workloads derive from):
// min-label propagation over a distributed graph, with every label
// exchange traveling as a Gravel fine-grain PUT message.
package main

import (
	"fmt"
	"sort"

	"gravel"
	"gravel/graphlib"
)

func main() {
	const nodes = 4

	// A sparse random graph fragments into one giant component plus
	// stragglers — label propagation finds them all.
	g := graphlib.Random(30_000, 2, 42)

	sys := gravel.New(gravel.Config{Nodes: nodes})
	defer sys.Close()

	eng := graphlib.NewEngine(sys, g)
	rounds := eng.Run(graphlib.ConnectedComponents{}, 0)

	// Summarize component sizes.
	sizes := map[uint64]int{}
	for v := 0; v < g.N; v++ {
		sizes[eng.State(v)]++
	}
	order := make([]int, 0, len(sizes))
	for _, n := range sizes {
		order = append(order, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(order)))

	fmt.Printf("%v on %d nodes\n", g, nodes)
	fmt.Printf("components: %d (converged in %d rounds)\n", len(sizes), rounds)
	fmt.Printf("largest: %v...\n", order[:min(5, len(order))])
	st := sys.NetStats()
	fmt.Printf("virtual time %.3f ms, remote PUTs %.1f%%, avg packet %.0f B\n",
		sys.VirtualTimeNs()/1e6, 100*st.RemoteFrac(), st.AvgPacketBytes)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
