// PageRank over a circulant graph, distributed across four simulated
// nodes. Every vertex PUTs rank/degree into a dedicated per-edge slot
// at each neighbor (only non-atomic PUT operations, as in the paper's
// PR workload), then sums its own in-edge slots locally.
//
// The circulant topology (neighbors at fixed offsets) keeps the
// edge-slot indexing self-contained: the in-edge of v coming from
// v-offs[k] lives at slot v*len(offs)+k.
package main

import (
	"fmt"

	"gravel"
)

const (
	n     = 1 << 14 // vertices
	iters = 10
	scale = 1 << 32 // Q.32 fixed point
	damp  = scale * 85 / 100
)

// offs defines the circulant edges: v connects to v+d (mod n) for every
// d, and the set is symmetric so each edge exists in both directions.
// The ±4097 offsets cross partition boundaries, generating remote PUTs.
var offs = []int{-4097, -1, 1, 4097}

func main() {
	const nodes = 4
	sys := gravel.New(gravel.Config{Nodes: nodes})
	defer sys.Close()

	deg := len(offs)
	rank := sys.Space().Alloc(n)
	in := sys.Space().Alloc(n * deg) // in-edge slots, co-located with v
	rank.Fill(scale)

	part := (n + nodes - 1) / nodes
	grid := make([]int, nodes)
	for i := range grid {
		lo, hi := i*part, (i+1)*part
		if hi > n {
			hi = n
		}
		grid[i] = hi - lo
	}

	for it := 0; it < iters; it++ {
		// Push: PUT rank*damp/deg into each neighbor's slot for me.
		sys.Step("push", grid, 0, func(c gravel.Ctx) {
			g := c.Group()
			lo := c.Node() * part
			idx := make([]uint64, g.Size)
			val := make([]uint64, g.Size)
			for k := range offs {
				d := offs[k]
				// The in-edge of v from v-d is slot v*deg+k.
				g.VectorN(3, func(l int) {
					u := lo + g.GlobalID(l)
					v := ((u+d)%n + n) % n
					idx[l] = uint64(v*deg + k)
					val[l] = mulScale(rank.Load(uint64(u)), damp) / uint64(deg)
				})
				c.Put(in, idx, val, nil)
			}
		})
		// Gather: new rank = (1-d) + sum of my in-slots (local reads).
		sys.Step("gather", grid, 0, func(c gravel.Ctx) {
			g := c.Group()
			lo := c.Node() * part
			g.VectorN(deg+2, func(l int) {
				v := lo + g.GlobalID(l)
				acc := uint64(scale - damp)
				for k := 0; k < deg; k++ {
					acc += in.Load(uint64(v*deg + k))
				}
				rank.Store(uint64(v), acc)
			})
		})
	}

	var sum, min, max uint64
	min = ^uint64(0)
	for v := uint64(0); v < n; v++ {
		r := rank.Load(v)
		sum += r
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	fmt.Printf("vertices: %d  iterations: %d  nodes: %d\n", n, iters, nodes)
	fmt.Printf("rank mass: %.4f (want %d)\n", float64(sum)/scale, n)
	// A circulant graph is vertex-transitive, so converged ranks must be
	// exactly uniform — a strong end-to-end correctness check.
	fmt.Printf("rank range: [%.4f, %.4f] (uniform = correct)\n", float64(min)/scale, float64(max)/scale)
	fmt.Printf("virtual time: %.3f ms, remote %.1f%%\n",
		sys.VirtualTimeNs()/1e6, 100*sys.NetStats().RemoteFrac())
}

// mulScale multiplies two Q.32 fixed-point values.
func mulScale(a, b uint64) uint64 {
	hiA, loA := a>>32, a&0xffffffff
	hiB, loB := b>>32, b&0xffffffff
	return hiA*hiB<<32 + hiA*loB + loA*hiB + loA*loB>>32
}
