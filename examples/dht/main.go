// Distributed hash table construction with active messages — the
// communication pattern of the paper's Meraculous (mer) workload. Every
// work-item extracts tokens from its shard of a synthetic corpus and
// sends each one as an active message to the node owning its hash
// bucket; the owner's network thread inserts it into a node-local
// open-addressing table.
package main

import (
	"fmt"
	"sort"

	"gravel"
)

const (
	nodes      = 4
	docsPerWI  = 1
	wisPerNode = 20_000
	tokensDoc  = 8
	vocab      = 1000
)

func hash(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// table is a node-local open-addressing hash table; only the owning
// node's network thread writes it.
type table struct {
	keys   []uint64
	counts []int64
}

func newTable(slots int) *table {
	n := 1
	for n < slots {
		n <<= 1
	}
	return &table{keys: make([]uint64, n), counts: make([]int64, n)}
}

func (t *table) insert(key uint64) {
	mask := uint64(len(t.keys) - 1)
	for s := hash(key) & mask; ; s = (s + 1) & mask {
		switch t.keys[s] {
		case 0:
			t.keys[s] = key + 1
			t.counts[s] = 1
			return
		case key + 1:
			t.counts[s]++
			return
		}
	}
}

func main() {
	sys := gravel.New(gravel.Config{Nodes: nodes})
	defer sys.Close()

	tables := make([]*table, nodes)
	for i := range tables {
		tables[i] = newTable(4 * vocab)
	}
	insert := sys.RegisterAM(func(node int, key, _ uint64) {
		tables[node].insert(key)
	})

	grid := make([]int, nodes)
	for i := range grid {
		grid[i] = wisPerNode
	}

	// Zipf-ish token draw: token t has weight ~ 1/(t+1).
	token := func(node, wi, j int) uint64 {
		h := hash(uint64(node)<<40 ^ uint64(wi)<<8 ^ uint64(j))
		r := float64(h%1000000) / 1000000
		t := uint64(float64(vocab) * r * r) // quadratic skew toward 0
		return t
	}

	sys.Step("count-tokens", grid, 0, func(c gravel.Ctx) {
		g := c.Group()
		node := c.Node()
		counts := make([]int, g.Size)
		dst := make([]int, g.Size)
		key := make([]uint64, g.Size)
		one := make([]uint64, g.Size)
		g.Vector(func(l int) {
			counts[l] = tokensDoc * docsPerWI
			one[l] = 1
		})
		// A diverged work-group-level loop: lanes emit one AM per token.
		g.PredicatedLoop(counts, 4, func(j int, active []bool) {
			g.VectorMasked(2, active, func(l int) {
				tok := token(node, g.GlobalID(l), j)
				key[l] = tok
				dst[l] = int(hash(tok^0xd17) % nodes)
			})
			c.AM(insert, dst, key, one, active)
		})
	})

	// Report the hottest tokens across the cluster.
	type kv struct {
		key uint64
		n   int64
	}
	var all []kv
	var total int64
	for _, t := range tables {
		for s, k := range t.keys {
			if k != 0 {
				all = append(all, kv{k - 1, t.counts[s]})
				total += t.counts[s]
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	want := int64(nodes * wisPerNode * tokensDoc * docsPerWI)
	fmt.Printf("tokens inserted: %d (want %d), distinct: %d\n", total, want, len(all))
	fmt.Println("hottest tokens:")
	for i := 0; i < 5 && i < len(all); i++ {
		fmt.Printf("  token %4d: %6d occurrences\n", all[i].key, all[i].n)
	}
	st := sys.NetStats()
	fmt.Printf("virtual time %.3f ms, remote %.1f%%, avg packet %.0f B\n",
		sys.VirtualTimeNs()/1e6, 100*st.RemoteFrac(), st.AvgPacketBytes)
}
