// Quickstart: fine-grain atomic increments against a distributed table
// (the paper's GUPS pattern, Figure 4b). Each GPU work-item initiates
// one 8-byte increment to a random offset; Gravel offloads them at
// work-group granularity and aggregates them into 64 kB per-node queues.
package main

import (
	"fmt"

	"gravel"
)

// splitmix is a tiny deterministic hash for update offsets.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}

func main() {
	const (
		nodes     = 4
		tableSize = 1 << 18
		updates   = 1 << 16 // per node
	)

	sys := gravel.New(gravel.Config{Nodes: nodes})
	defer sys.Close()

	table := sys.Space().Alloc(tableSize)

	grid := make([]int, nodes)
	for i := range grid {
		grid[i] = updates
	}

	sys.Step("updates", grid, 0, func(c gravel.Ctx) {
		g := c.Group()
		idx := make([]uint64, g.Size)
		one := make([]uint64, g.Size)
		node := uint64(c.Node())
		g.Vector(func(l int) {
			idx[l] = splitmix(node<<40^uint64(g.GlobalID(l))) % tableSize
			one[l] = 1
		})
		// Atomic increments are always routed through the owner's
		// network thread — even local ones (§6 of the paper).
		c.Inc(table, idx, one, nil)
	})

	st := sys.NetStats()
	fmt.Printf("table sum:        %d (want %d)\n", table.Sum(), nodes*updates)
	fmt.Printf("virtual time:     %.3f ms\n", sys.VirtualTimeNs()/1e6)
	fmt.Printf("remote accesses:  %.1f%%\n", 100*st.RemoteFrac())
	fmt.Printf("avg wire packet:  %.0f B\n", st.AvgPacketBytes)
	fmt.Printf("updates/s (virt): %.1f M\n", float64(nodes*updates)/sys.VirtualTimeNs()*1e3)
}
