// Benchmarks: one per table and figure of the paper's evaluation. Each
// runs the corresponding experiment driver at a reduced scale and
// reports its headline metric; run cmd/gravel-bench for the full tables
// at default scale.
//
//	go test -bench=. -benchmem
package gravel_test

import (
	"strconv"
	"testing"

	"gravel/internal/apps/gups"
	"gravel/internal/apps/inedges"
	"gravel/internal/bench"
	"gravel/internal/core"
	"gravel/internal/graph"
	"gravel/internal/models"
	"gravel/internal/simt"
)

// benchScale keeps the full-figure drivers fast inside testing.B.
const benchScale = 0.2

// BenchmarkFig6QueueWGSize reproduces Figure 6: producer/consumer queue
// throughput vs work-group size for 32-byte messages.
func BenchmarkFig6QueueWGSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Fig6()
		if i == 0 {
			reportFirstLast(b, t, "wg1_GBs", "wg4_GBs")
		}
	}
}

// BenchmarkFig8QueueMsgSize reproduces Figure 8: queue bandwidth vs
// message size for Gravel's queue and the CPU-only baselines.
func BenchmarkFig8QueueMsgSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Fig8()
		_ = t
	}
}

// BenchmarkTable2LinesOfCode reproduces Table 2 (GUPS code size per
// model).
func BenchmarkTable2LinesOfCode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table2()
	}
}

// BenchmarkTable5NetworkStats reproduces Table 5 (remote-access
// frequency and average message size at eight nodes).
func BenchmarkTable5NetworkStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table5(benchScale, nil)
	}
}

// BenchmarkFig12Scalability reproduces Figure 12 (Gravel's speedup at
// 1/2/4/8 nodes); the geo-mean 8-node speedup is the headline metric
// (the paper reports 5.3x).
func BenchmarkFig12Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Fig12(benchScale, nil)
		if i == 0 {
			last := t.Rows[len(t.Rows)-1]
			if v, err := strconv.ParseFloat(last[len(last)-1], 64); err == nil {
				b.ReportMetric(v, "geomean8x")
			}
		}
	}
}

// BenchmarkFig13VsCPU reproduces Figure 13 (Gravel vs CPU-only
// distributed baseline).
func BenchmarkFig13VsCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig13(benchScale, nil)
	}
}

// BenchmarkFig14QueueSizeSweep reproduces Figure 14 (GUPS vs per-node
// queue size).
func BenchmarkFig14QueueSizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig14(benchScale, nil)
	}
}

// BenchmarkFig15StyleComparison reproduces Figure 15 (all six GPU
// networking models on every workload at eight nodes).
func BenchmarkFig15StyleComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Fig15(benchScale, nil)
	}
}

// BenchmarkSec82DivergedOps reproduces §8.2 (software predication vs
// WG-granularity control flow vs fine-grain barriers on GUPS-mod).
func BenchmarkSec82DivergedOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Sec82(benchScale, nil)
	}
}

// BenchmarkHierScaling runs the §10 projection (flat vs hierarchical
// aggregation on 8-128 nodes).
func BenchmarkHierScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Hier(0.05, nil)
	}
}

// BenchmarkAblations runs the design-choice ablations (offload
// granularity, local-atomic routing, slot padding).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Ablations(benchScale, nil)
	}
}

// BenchmarkGravelGUPS benchmarks the core runtime end to end: virtual
// GUPS at 8 nodes, plus the wall-clock cost of simulating it.
func BenchmarkGravelGUPS(b *testing.B) {
	cfg := gups.Config{TableSize: 1 << 18, UpdatesPerNode: 1 << 15, Seed: 1}
	for i := 0; i < b.N; i++ {
		sys := models.Gravel(8, nil)
		res := gups.Run(sys, cfg)
		sys.Close()
		if i == 0 {
			b.ReportMetric(res.GUPS, "virtGUPS")
		}
	}
}

// BenchmarkOffloadModes compares the per-update simulation cost of the
// three diverged WG-level operation modes (§8.2) head to head.
func BenchmarkOffloadModes(b *testing.B) {
	for _, mode := range []simt.DivergenceMode{
		simt.SoftwarePredication, simt.WGReconvergence, simt.FineGrainBarrier,
	} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := gups.ModConfig{TableSize: 1 << 14, WIsPerNode: 1 << 14, Seed: 1}
			var virt float64
			for i := 0; i < b.N; i++ {
				cl := core.New(core.Config{Nodes: 2, DivMode: mode})
				res := gups.RunMod(cl, cfg)
				cl.Close()
				virt = res.Ns
			}
			b.ReportMetric(virt/1e6, "virt_ms")
		})
	}
}

// reportFirstLast parses the first and last data rows' second column as
// metrics.
func reportFirstLast(b *testing.B, t *bench.Table, firstName, lastName string) {
	if len(t.Rows) == 0 {
		return
	}
	if v, err := strconv.ParseFloat(t.Rows[0][1], 64); err == nil {
		b.ReportMetric(v, firstName)
	}
	if v, err := strconv.ParseFloat(t.Rows[len(t.Rows)-2][1], 64); err == nil {
		b.ReportMetric(v, lastName)
	}
}

// BenchmarkSec5InEdgesStyles runs the paper's §5 count-in-edges example
// under each diverged-control-flow style, reporting the virtual time.
func BenchmarkSec5InEdgesStyles(b *testing.B) {
	g := graph.Bubbles(8000, 1)
	for _, style := range []inedges.Style{inedges.StylePredicated, inedges.StyleWGControlFlow, inedges.StyleFBar} {
		b.Run(style.String(), func(b *testing.B) {
			var virt float64
			for i := 0; i < b.N; i++ {
				cl := core.New(core.Config{Nodes: 4, DivMode: style.Mode()})
				res, _ := inedges.Run(cl, g, style)
				cl.Close()
				virt = res.Ns
			}
			b.ReportMetric(virt/1e6, "virt_ms")
		})
	}
}
