package gravel_test

import (
	"net"
	"sync"
	"testing"

	"gravel"
	"gravel/internal/apps/gups"
	"gravel/internal/core"
	"gravel/internal/transport"
)

// The transport must be invisible to applications: the same GUPS run
// must produce the same table sum on every fabric.

var distGUPS = gups.Config{
	TableSize:      1 << 12,
	UpdatesPerNode: 1 << 10,
	Seed:           7,
	Steps:          2,
}

func TestTransportsRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, n := range gravel.Transports() {
		names[n] = true
	}
	for _, want := range []string{"chan", "loopback", "tcp"} {
		if !names[want] {
			t.Errorf("transport %q not registered (have %v)", want, gravel.Transports())
		}
	}
}

// TestLoopbackMatchesChan swaps the default channel fabric for the
// loopback transport (real wire framing, in-process) through the public
// Config and expects bit-identical application results.
func TestLoopbackMatchesChan(t *testing.T) {
	ref := gravel.New(gravel.Config{Nodes: 4})
	want := gups.Run(ref, distGUPS).Sum
	ref.Close()

	lb := gravel.New(gravel.Config{Nodes: 4, Transport: "loopback"})
	got := gups.Run(lb, distGUPS).Sum
	stats := lb.NetStats()
	lb.Close()

	if got != want {
		t.Fatalf("loopback GUPS sum = %d, chan fabric = %d", got, want)
	}
	var pkts int64
	for _, d := range stats.PerDest {
		pkts += d.Packets
	}
	if pkts == 0 {
		t.Fatal("loopback run sent no wire packets — framing path not exercised")
	}
}

// TestTCPClusterMatchesChan runs a real 4-node TCP cluster — four full
// gravel.New instances, each hosting one node, joined through an
// in-process coordinator over localhost sockets — and checks that the
// reduced distributed sum equals the single-process channel fabric's.
// This is the in-test twin of `gravel-node -smoke` (which forks real OS
// processes).
func TestTCPClusterMatchesChan(t *testing.T) {
	const n = 4

	ref := gravel.New(gravel.Config{Nodes: n})
	want := gups.Run(ref, distGUPS).Sum
	ref.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := transport.NewCoordinator(n)
	go coord.Serve(ln)
	defer ln.Close()

	locals := make([]uint64, n)
	totals := make([]uint64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sys := gravel.New(gravel.Config{
				Nodes:     n,
				Transport: "tcp",
				TransportOpts: gravel.TransportOptions{
					Self:  i,
					Coord: ln.Addr().String(),
				},
			})
			defer sys.Close()
			locals[i] = gups.RunOn(sys, distGUPS, i).Sum
			tcp := sys.(interface{ Fabric() core.Fabric }).Fabric().(*transport.TCP)
			totals[i], errs[i] = tcp.Reduce("gups:sum", locals[i])
		}(i)
	}
	wg.Wait()

	var sum uint64
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("node %d reduce: %v", i, errs[i])
		}
		if totals[i] != totals[0] {
			t.Fatalf("nodes disagree on the reduced sum: %d vs %d", totals[i], totals[0])
		}
		sum += locals[i]
	}
	if sum != want || totals[0] != want {
		t.Fatalf("TCP cluster sum = %d (reduced %d), chan fabric = %d", sum, totals[0], want)
	}
}
