package gravel_test

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"gravel"
	"gravel/internal/apps/gups"
	"gravel/internal/core"
	"gravel/internal/harness"
	"gravel/internal/transport"
)

// The transport must be invisible to applications: the same GUPS run
// must produce the same table sum on every fabric.

var distGUPS = gups.Config{
	TableSize:      1 << 12,
	UpdatesPerNode: 1 << 10,
	Seed:           7,
	Steps:          2,
}

func TestTransportsRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, n := range gravel.Transports() {
		names[n] = true
	}
	for _, want := range []string{"chan", "loopback", "tcp"} {
		if !names[want] {
			t.Errorf("transport %q not registered (have %v)", want, gravel.Transports())
		}
	}
}

// TestLoopbackMatchesChan swaps the default channel fabric for the
// loopback transport (real wire framing, in-process) through the public
// Config and expects bit-identical application results — at one
// resolver shard (the serial network thread) and at four (banked
// receive-side resolution), which must also agree with each other.
func TestLoopbackMatchesChan(t *testing.T) {
	ref := gravel.New(gravel.Config{Nodes: 4})
	want := gups.Run(ref, distGUPS).Sum
	ref.Close()

	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			lb := gravel.New(gravel.Config{Nodes: 4, Transport: "loopback", ResolverShards: shards})
			got := gups.Run(lb, distGUPS).Sum
			stats := lb.NetStats()
			lb.Close()

			if got != want {
				t.Fatalf("loopback GUPS sum = %d, chan fabric = %d", got, want)
			}
			var pkts int64
			for _, d := range stats.PerDest {
				pkts += d.Packets
			}
			if pkts == 0 {
				t.Fatal("loopback run sent no wire packets — framing path not exercised")
			}
		})
	}
}

// TestEveryModelMatchesOverLoopback runs every networking model over
// the loopback transport (in-process, real wire framing) and requires
// application results bit-identical to the default channel fabric:
// the model × fabric axes must be fully independent.
func TestEveryModelMatchesOverLoopback(t *testing.T) {
	a := harness.MustApp("gups")
	p := harness.Params{Scale: 0.02}
	for _, model := range gravel.Models() {
		model := model
		t.Run(model, func(t *testing.T) {
			t.Parallel()
			ref := gravel.New(gravel.Config{Model: model, Nodes: 3})
			want := a.Run(ref, p)
			ref.Close()
			if want.Err != nil {
				t.Fatalf("chan run failed: %v", want.Err)
			}
			lb := gravel.New(gravel.Config{Model: model, Nodes: 3, Transport: "loopback"})
			got := a.Run(lb, p)
			lb.Close()
			if got.Err != nil {
				t.Fatalf("loopback run failed: %v", got.Err)
			}
			if got.Check != want.Check {
				t.Fatalf("loopback check = %d, chan fabric = %d", got.Check, want.Check)
			}
		})
	}
}

// TestTCPClusterMatchesChan runs a real 4-node TCP cluster — four full
// gravel.New instances, each hosting one node, joined through an
// in-process coordinator over localhost sockets — and checks that the
// reduced distributed sum equals the single-process channel fabric's.
// This is the in-test twin of `gravel-node -smoke` (which forks real OS
// processes).
func TestTCPClusterMatchesChan(t *testing.T) {
	const n = 4

	ref := gravel.New(gravel.Config{Nodes: n})
	want := gups.Run(ref, distGUPS).Sum
	ref.Close()

	// Run the cluster twice: once with the serial network thread and
	// once with four resolver banks per node. Both must match the chan
	// fabric bit-for-bit — sharding may only change wall time.
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			coord := transport.NewCoordinator(n)
			go coord.Serve(ln)
			defer ln.Close()

			locals := make([]uint64, n)
			totals := make([]uint64, n)
			errs := make([]error, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					sys := gravel.New(gravel.Config{
						Nodes:          n,
						Transport:      "tcp",
						ResolverShards: shards,
						TransportOpts: gravel.TransportOptions{
							Self:  i,
							Coord: ln.Addr().String(),
						},
					})
					defer sys.Close()
					locals[i] = gups.RunOn(sys, distGUPS, i).Sum
					tcp := sys.(interface{ Fabric() core.Fabric }).Fabric().(*transport.TCP)
					totals[i], errs[i] = tcp.Reduce("gups:sum", locals[i])
				}(i)
			}
			wg.Wait()

			var sum uint64
			for i := 0; i < n; i++ {
				if errs[i] != nil {
					t.Fatalf("node %d reduce: %v", i, errs[i])
				}
				if totals[i] != totals[0] {
					t.Fatalf("nodes disagree on the reduced sum: %d vs %d", totals[i], totals[0])
				}
				sum += locals[i]
			}
			if sum != want || totals[0] != want {
				t.Fatalf("TCP cluster sum = %d (reduced %d), chan fabric = %d", sum, totals[0], want)
			}
		})
	}
}

// TestTCPClusterCoprocessorMatchesSingle runs a baseline model — not
// just gravel — as a real multi-process-style TCP cluster through the
// shared harness registry's shard entry point, and requires the reduced
// checksum to match the single-process run bit-for-bit. This pins the
// tentpole contract: any model, any fabric, one registry.
func TestTCPClusterCoprocessorMatchesSingle(t *testing.T) {
	const n = 3
	a := harness.MustApp("gups")
	p := harness.Params{Scale: 0.02}

	ref := gravel.New(gravel.Config{Model: gravel.ModelCoprocessor, Nodes: n})
	want := a.Run(ref, p)
	ref.Close()
	if want.Err != nil {
		t.Fatalf("single-process run failed: %v", want.Err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	coord := transport.NewCoordinator(n)
	go coord.Serve(ln)
	defer ln.Close()

	locals := make([]uint64, n)
	totals := make([]uint64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sys := gravel.New(gravel.Config{
				Model:     gravel.ModelCoprocessor,
				Nodes:     n,
				Transport: "tcp",
				TransportOpts: gravel.TransportOptions{
					Self:  i,
					Coord: ln.Addr().String(),
				},
			})
			defer sys.Close()
			tcp := sys.(interface{ Fabric() core.Fabric }).Fabric().(*transport.TCP)
			shard := a.Shard(sys, i, p, tcp.Collectives())
			if shard.Err != nil {
				errs[i] = shard.Err
				return
			}
			locals[i] = shard.Check
			totals[i], errs[i] = tcp.Reduce("gups:sum", shard.Check)
		}(i)
	}
	wg.Wait()

	var sum uint64
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("node %d: %v", i, errs[i])
		}
		if totals[i] != totals[0] {
			t.Fatalf("nodes disagree on the reduced check: %d vs %d", totals[i], totals[0])
		}
		sum += locals[i]
	}
	if sum != want.Check || totals[0] != want.Check {
		t.Fatalf("coprocessor TCP cluster check = %d (reduced %d), single-process = %d", sum, totals[0], want.Check)
	}
}

// TestTCPClusterArchiveMatchesSingle pins the archive aggregation
// strategy end to end: the gravel-archive model as a 3-node TCP cluster
// must reduce to the single-process checksum bit-for-bit, at one
// resolver shard and at four — the WF-aggregated appends, segment
// seals, fused bulk packets, and signal-liveness staging must all be
// invisible to the application on a real socket fabric.
func TestTCPClusterArchiveMatchesSingle(t *testing.T) {
	const n = 3
	a := harness.MustApp("gups")
	p := harness.Params{Scale: 0.02}

	ref := gravel.New(gravel.Config{Model: gravel.ModelGravelArchive, Nodes: n})
	want := a.Run(ref, p)
	ref.Close()
	if want.Err != nil {
		t.Fatalf("single-process run failed: %v", want.Err)
	}

	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			coord := transport.NewCoordinator(n)
			go coord.Serve(ln)
			defer ln.Close()

			locals := make([]uint64, n)
			totals := make([]uint64, n)
			errs := make([]error, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					sys := gravel.New(gravel.Config{
						Model:          gravel.ModelGravelArchive,
						Nodes:          n,
						Transport:      "tcp",
						ResolverShards: shards,
						TransportOpts: gravel.TransportOptions{
							Self:  i,
							Coord: ln.Addr().String(),
						},
					})
					defer sys.Close()
					tcp := sys.(interface{ Fabric() core.Fabric }).Fabric().(*transport.TCP)
					shard := a.Shard(sys, i, p, tcp.Collectives())
					if shard.Err != nil {
						errs[i] = shard.Err
						return
					}
					locals[i] = shard.Check
					totals[i], errs[i] = tcp.Reduce("gups:sum", shard.Check)
				}(i)
			}
			wg.Wait()

			var sum uint64
			for i := 0; i < n; i++ {
				if errs[i] != nil {
					t.Fatalf("node %d: %v", i, errs[i])
				}
				if totals[i] != totals[0] {
					t.Fatalf("nodes disagree on the reduced check: %d vs %d", totals[i], totals[0])
				}
				sum += locals[i]
			}
			if sum != want.Check || totals[0] != want.Check {
				t.Fatalf("gravel-archive TCP cluster check = %d (reduced %d), single-process = %d", sum, totals[0], want.Check)
			}
		})
	}
}
