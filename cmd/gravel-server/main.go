// Command gravel-server is gravel-as-a-service: a long-lived,
// multi-tenant job daemon over the harness registry. Clients submit
// cluster-run jobs as HTTP/JSON; the server queues them with
// priorities, dedups identical in-flight requests, retries failed
// workers with backoff, serves repeated requests from an LRU result
// cache, and multiplexes execution across a pool of warm noderun
// worker sets. One address serves everything: the job API under
// /api/v1/ and the observability endpoints /metrics and /healthz.
//
// Usage:
//
//	gravel-server -listen 127.0.0.1:8484 -pool 4
//	gravel-server -selfbench -json BENCH_PR6.json
//
// API sketch (see README "Service mode" for a walkthrough):
//
//	POST   /api/v1/jobs            submit {"app","model","nodes","fabric","scale","seed","priority",...}
//	GET    /api/v1/jobs            list all jobs
//	GET    /api/v1/jobs/{id}       job status (?wait=30s long-polls to terminal)
//	GET    /api/v1/jobs/{id}/events stream progress as JSON lines
//	DELETE /api/v1/jobs/{id}       cancel
//	GET    /api/v1/registry        registered apps / models / transports
//	GET    /api/v1/admin/queue     queue depth, dedup/cache/retry counters
//	GET    /api/v1/admin/workers   worker-pool slots
//	GET    /metrics, /healthz      shared observability endpoints
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gravel/internal/buildinfo"
	"gravel/internal/jobqueue"
	"gravel/internal/noderun"
	"gravel/internal/obs"
	"gravel/internal/server"
)

var (
	listen       = flag.String("listen", "127.0.0.1:8484", "serve the job API, /metrics and /healthz on this address (:0 picks a port)")
	pool         = flag.Int("pool", 2, "warm worker slots: jobs executing concurrently")
	cacheSize    = flag.Int("cache", 256, "result-cache capacity in entries (<0 disables)")
	retries      = flag.Int("retries", 2, "re-executions of a failed job before it is declared failed")
	retryBackoff = flag.Duration("retry-backoff", 100*time.Millisecond, "delay before the first retry (doubles per retry)")
	backoffMax   = flag.Duration("retry-backoff-max", 5*time.Second, "retry backoff ceiling")
	workerBin    = flag.String("worker-bin", "", "binary exec-fabric workers re-exec (default: this executable)")
	drainFor     = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget: how long SIGINT/SIGTERM waits for in-flight jobs before forcing")
	version      = flag.Bool("version", false, "print the build-info string and exit")
	selfbench    = flag.Bool("selfbench", false, "benchmark the service against itself (jobs/sec, submit-to-result latency) and exit")
	jsonPath     = flag.String("json", "", "selfbench: also write machine-readable results to this path")
)

func main() {
	// A process forked by the pool's exec fabric is a cluster worker.
	noderun.MaybeWorkerMain()
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Full("gravel-server"))
		return
	}
	// The flight recorder feeds /metrics histograms and the per-job
	// progress streams' stats deltas.
	obs.Start(obs.Options{})
	defer obs.Stop()

	if *selfbench {
		if err := runSelfbench(*jsonPath); err != nil {
			fatal(err)
		}
		return
	}

	srv, err := server.New(*listen, serverOptions(*pool))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("gravel-server: listening on %s (pool %d, cache %d, retries %d, build %s)\n",
		srv.Addr(), *pool, *cacheSize, *retries, buildinfo.String())

	// Graceful shutdown: the first signal starts a drain — new submits
	// are refused with 503 while queued and running jobs finish within
	// the -drain budget; a second signal (or the budget expiring) forces
	// the close, canceling whatever remains.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("gravel-server: draining for up to %v (signal again to force)\n", *drainFor)
	go func() {
		<-sig
		fmt.Println("gravel-server: forced shutdown")
		srv.Close()
	}()
	if err := srv.Shutdown(*drainFor); err != nil {
		fatal(err)
	}
	fmt.Println("gravel-server: drained")
}

func serverOptions(poolSize int) server.Options {
	return server.Options{
		Queue: jobqueue.Options{
			MaxRetries:      *retries,
			RetryBackoff:    *retryBackoff,
			RetryBackoffMax: *backoffMax,
			CacheSize:       *cacheSize,
		},
		Pool:      poolSize,
		WorkerBin: *workerBin,
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gravel-server:", err)
	os.Exit(1)
}
