package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"gravel/internal/buildinfo"
	"gravel/internal/cliflags"
	"gravel/internal/jobqueue"
	"gravel/internal/server"
)

// Selfbench measures the service's own overhead: it stands up an
// in-process gravel-server at each pool size and pushes jobs through
// the full HTTP path (POST submit, long-poll to terminal), once with
// distinct specs (uncached: every job executes a cluster) and once
// with repeats of completed specs (cached: the LRU answers at submit).
// The gap between the two is what the queue+cache machinery buys.

const (
	benchJobs  = 24
	benchNodes = 3
	benchScale = 0.05
)

type benchLatency struct {
	Jobs       int     `json:"jobs"`
	WallNs     int64   `json:"wall_ns"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	P50Ns      int64   `json:"p50_ns"`
	P99Ns      int64   `json:"p99_ns"`
	MaxNs      int64   `json:"max_ns"`
}

type benchPool struct {
	Pool     int          `json:"pool"`
	Uncached benchLatency `json:"uncached"`
	Cached   benchLatency `json:"cached"`
}

type benchDoc struct {
	Benchmark string      `json:"benchmark"`
	Build     string      `json:"build"`
	GoVersion string      `json:"go_version"`
	CPUs      int         `json:"cpus"`
	App       string      `json:"app"`
	Model     string      `json:"model"`
	Nodes     int         `json:"nodes"`
	Fabric    string      `json:"fabric"`
	Scale     float64     `json:"scale"`
	JobsPhase int         `json:"jobs_per_phase"`
	Pools     []benchPool `json:"pools"`
}

func runSelfbench(jsonOut string) error {
	doc := benchDoc{
		Benchmark: "gravel-server selfbench: submit-to-result latency over HTTP",
		Build:     buildinfo.String(),
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		App:       "gups",
		Model:     "gravel",
		Nodes:     benchNodes,
		Fabric:    "local",
		Scale:     benchScale,
		JobsPhase: benchJobs,
	}
	for _, p := range []int{1, 2, 4} {
		res, err := benchPoolSize(p)
		if err != nil {
			return fmt.Errorf("selfbench pool %d: %w", p, err)
		}
		doc.Pools = append(doc.Pools, res)
		fmt.Printf("pool %d: uncached %6.1f jobs/s (p50 %s, p99 %s)  cached %8.1f jobs/s (p50 %s, p99 %s)\n",
			p,
			res.Uncached.JobsPerSec, time.Duration(res.Uncached.P50Ns), time.Duration(res.Uncached.P99Ns),
			res.Cached.JobsPerSec, time.Duration(res.Cached.P50Ns), time.Duration(res.Cached.P99Ns))
	}
	if jsonOut != "" {
		if err := cliflags.WriteJSON(jsonOut, doc); err != nil {
			return err
		}
		fmt.Printf("selfbench: wrote %s\n", jsonOut)
	}
	return nil
}

func benchPoolSize(poolSize int) (benchPool, error) {
	srv, err := server.New("127.0.0.1:0", serverOptions(poolSize))
	if err != nil {
		return benchPool{}, err
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Distinct seeds force distinct cache keys: every job executes.
	uncached, err := benchPhase(base, benchJobs, func(i int) uint64 { return uint64(1000 + i) })
	if err != nil {
		return benchPool{}, err
	}
	// The same seeds again: every job is an LRU hit, done at submit.
	cached, err := benchPhase(base, benchJobs, func(i int) uint64 { return uint64(1000 + i) })
	if err != nil {
		return benchPool{}, err
	}
	return benchPool{Pool: poolSize, Uncached: uncached, Cached: cached}, nil
}

// benchPhase submits n jobs concurrently over HTTP and long-polls each
// to a terminal state, returning per-job latency percentiles and
// aggregate throughput.
func benchPhase(base string, n int, seed func(int) uint64) (benchLatency, error) {
	lat := make([]time.Duration, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			errs[i] = submitAndWait(base, seed(i))
			lat[i] = time.Since(t0)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return benchLatency{}, err
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) int64 {
		idx := int(p * float64(n-1))
		return lat[idx].Nanoseconds()
	}
	return benchLatency{
		Jobs:       n,
		WallNs:     wall.Nanoseconds(),
		JobsPerSec: float64(n) / wall.Seconds(),
		P50Ns:      pct(0.50),
		P99Ns:      pct(0.99),
		MaxNs:      lat[n-1].Nanoseconds(),
	}, nil
}

func submitAndWait(base string, seed uint64) error {
	req := server.SubmitRequest{
		App: "gups", Model: "gravel", Nodes: benchNodes,
		Fabric: "local", Scale: benchScale, Seed: seed,
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	var sub server.SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("decode submit: %w", err)
	}
	if sub.Job.ID == "" {
		return fmt.Errorf("submit rejected (status %d)", resp.StatusCode)
	}
	if sub.Job.State.Terminal() {
		if sub.Job.State != jobqueue.StateDone {
			return fmt.Errorf("job %s: %s at submit", sub.Job.ID, sub.Job.State)
		}
		return nil // cache hit: done at submit time
	}
	wresp, err := http.Get(base + "/api/v1/jobs/" + sub.Job.ID + "?wait=60s")
	if err != nil {
		return err
	}
	var view jobqueue.View
	err = json.NewDecoder(wresp.Body).Decode(&view)
	wresp.Body.Close()
	if err != nil {
		return fmt.Errorf("decode wait: %w", err)
	}
	if view.State != jobqueue.StateDone {
		return fmt.Errorf("job %s finished %s: %s", view.ID, view.State, view.Err)
	}
	return nil
}
