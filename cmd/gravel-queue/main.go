// Command gravel-queue exercises Gravel's producer/consumer queue in
// isolation: a configurable number of producer goroutines (each acting
// as one work-group stream) against consumer goroutines, reporting
// measured throughput and the protocol's atomic cost per message.
//
// Usage:
//
//	gravel-queue [-msgs N] [-bytes B] [-wg LANES] [-producers P] [-consumers C] [-slots S]
package main

import (
	"flag"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gravel/internal/buildinfo"
	"gravel/internal/queue"
)

func main() {
	msgs := flag.Int("msgs", 1<<20, "total messages to move")
	msgBytes := flag.Int("bytes", 32, "message size in bytes (multiple of 8)")
	wg := flag.Int("wg", 256, "work-group size (messages per reservation)")
	producers := flag.Int("producers", 2, "producer goroutines")
	consumers := flag.Int("consumers", 1, "consumer goroutines")
	slots := flag.Int("slots", 128, "queue slots")
	version := flag.Bool("version", false, "print the build-info string and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Full("gravel-queue"))
		return
	}

	rows := (*msgBytes + 7) / 8
	q := queue.NewGravel(*slots, rows, *wg)
	fmt.Printf("queue: %d slots x (%d rows x %d cols), %d B/msg, GOMAXPROCS=%d\n",
		q.NumSlots(), q.Rows, q.Cols, q.BytesPerMessage(), runtime.GOMAXPROCS(0))

	perProd := *msgs / *producers / *wg * *wg
	var pwg sync.WaitGroup
	start := time.Now()
	for p := 0; p < *producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for sent := 0; sent < perProd; sent += *wg {
				s := q.Reserve(*wg)
				for r := 0; r < rows; r++ {
					row := s.Row(r)
					for m := range row {
						row[m] = uint64(p<<32 + sent + m)
					}
				}
				s.Commit()
			}
		}(p)
	}
	var cwg sync.WaitGroup
	done := make(chan struct{})
	var sum [64]uint64
	for c := 0; c < *consumers; c++ {
		cwg.Add(1)
		go func(c int) {
			defer cwg.Done()
			var acc uint64
			for {
				if !q.TryConsume(func(p []uint64, rows, cols, count int) {
					for r := 0; r < rows; r++ {
						for m := 0; m < count; m++ {
							acc += p[r*cols+m]
						}
					}
				}) {
					select {
					case <-done:
						if q.Empty() {
							sum[c%len(sum)] = acc
							return
						}
					default:
					}
					runtime.Gosched()
				}
			}
		}(c)
	}
	pwg.Wait()
	close(done)
	cwg.Wait()
	elapsed := time.Since(start)

	moved := perProd * *producers
	bytes := float64(moved) * float64(rows*8)
	fmt.Printf("moved %d messages (%.1f MB) in %v\n", moved, bytes/1e6, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.3f GB/s, %.1f Mmsg/s\n",
		bytes/elapsed.Seconds()/1e9, float64(moved)/elapsed.Seconds()/1e6)
	atomics := float64(queue.ProducerAtomicsPerReserve+queue.ConsumerAtomicsPerClaim) / float64(*wg)
	fmt.Printf("protocol atomics per message: %.4f\n", atomics)
}
