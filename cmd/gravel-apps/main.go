// Command gravel-apps runs any registered application on any
// networking model at any cluster size, printing functional results,
// virtual time and network statistics. The app and model tables come
// from internal/harness — the same registry gravel-node and
// gravel-bench use — so the three binaries cannot drift.
//
// Usage:
//
//	gravel-apps -app=gups -nodes=8 -model=gravel [-scale=1.0]
//	gravel-apps -app=sssp-1 -nodes=4 -model=coprocessor
//	gravel-apps -list [-json -]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gravel"
	"gravel/internal/buildinfo"
	"gravel/internal/cliflags"
	"gravel/internal/harness"
	"gravel/internal/rt"
)

// appReport is the -json document: the run's identity, summary and
// checksum plus the full versioned Stats snapshot. Check is the app's
// additive checksum — the same value cluster runs reduce — so scripts
// can compare a service or cluster result against a direct run.
type appReport struct {
	App       string   `json:"app"`
	Model     string   `json:"model"`
	Nodes     int      `json:"nodes"`
	Scale     float64  `json:"scale"`
	Summary   string   `json:"summary"`
	Check     uint64   `json:"check"`
	VirtualNs float64  `json:"virtual_ns"`
	WallNs    int64    `json:"wall_ns"`
	Stats     rt.Stats `json:"stats"`
}

func main() {
	app := flag.String("app", "gups", "application to run (see -list)")
	model := flag.String("model", "gravel", "networking model (see -list)")
	nodes := flag.Int("nodes", 8, "cluster size")
	scale := flag.Float64("scale", 1.0, "input scale factor")
	phases := flag.Bool("phases", false, "print the per-superstep virtual-time breakdown")
	group := flag.Int("groupsize", 0, "two-level hierarchical aggregation group size (gravel model only)")
	list := flag.Bool("list", false, "list registered apps, models and transports, then exit")
	version := flag.Bool("version", false, "print the build-info string and exit")
	var common cliflags.Common
	common.RegisterDefault(true)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Full("gravel-apps"))
		return
	}

	if *list {
		if err := harness.PrintList(common.JSONPath); err != nil {
			fmt.Fprintln(os.Stderr, "gravel-apps:", err)
			os.Exit(1)
		}
		return
	}

	a, err := harness.LookupApp(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gravel-apps:", err)
		os.Exit(2)
	}

	sess, err := common.Begin()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gravel-apps:", err)
		os.Exit(1)
	}

	sys, err := gravel.NewChecked(gravel.Config{Model: *model, Nodes: *nodes, GroupSize: *group, ResolverShards: common.ResolverShards})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gravel-apps:", err)
		os.Exit(2)
	}
	sess.SetStats(func() *rt.Stats {
		st := sys.Stats()
		return &st
	})

	start := time.Now()
	res := a.Run(sys, harness.Params{Scale: *scale})
	wall := time.Since(start)

	st := sys.Stats()
	net := st.NetStats()
	fmt.Printf("app=%s model=%s nodes=%d scale=%g\n", *app, *model, *nodes, *scale)
	fmt.Printf("  %s\n", res.Summary)
	fmt.Printf("  virtual time: %.3f ms   (simulated in %v)\n", sys.VirtualTimeNs()/1e6, wall.Round(time.Millisecond))
	fmt.Printf("  remote accesses: %.1f%%   avg wire packet: %.0f B   agg busy: %.0f%%\n",
		100*net.RemoteFrac(), net.AvgPacketBytes, 100*net.AggBusyFrac)
	if *phases {
		harness.PhaseReport(os.Stdout, sys)
	}
	if common.JSONPath != "" {
		rep := appReport{
			App: *app, Model: *model, Nodes: *nodes, Scale: *scale,
			Summary: res.Summary, Check: res.Check,
			VirtualNs: sys.VirtualTimeNs(), WallNs: wall.Nanoseconds(),
			Stats: st,
		}
		if err := cliflags.WriteJSON(common.JSONPath, rep); err != nil {
			fmt.Fprintln(os.Stderr, "gravel-apps:", err)
			os.Exit(1)
		}
	}
	sys.Close()
	if err := sess.End(); err != nil {
		fmt.Fprintln(os.Stderr, "gravel-apps:", err)
		os.Exit(1)
	}
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, "gravel-apps: verification failed:", res.Err)
		os.Exit(1)
	}
}
