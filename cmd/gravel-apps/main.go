// Command gravel-apps runs any of the paper's six applications on any
// networking model at any cluster size, printing functional results,
// virtual time and network statistics.
//
// Usage:
//
//	gravel-apps -app=gups -nodes=8 -model=gravel [-scale=1.0]
//	gravel-apps -app=sssp -nodes=4 -model=coprocessor
//
// Apps: gups, gups-mod, pagerank-1, pagerank-2, sssp-1, sssp-2,
// color-1, color-2, kmeans, mer, mer-full. Models: gravel, coprocessor,
// coprocessor+buf, msg-per-lane, coalesced, coalesced+agg, cpu-only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"gravel"
	"gravel/internal/apps/color"
	"gravel/internal/apps/gups"
	"gravel/internal/apps/kmeans"
	"gravel/internal/apps/mer"
	"gravel/internal/apps/pagerank"
	"gravel/internal/apps/sssp"
	"gravel/internal/cliflags"
	"gravel/internal/core"
	"gravel/internal/graph"
	"gravel/internal/rt"
)

// appReport is the -json document: the run's identity and summary plus
// the full versioned Stats snapshot.
type appReport struct {
	App       string   `json:"app"`
	Model     string   `json:"model"`
	Nodes     int      `json:"nodes"`
	Scale     float64  `json:"scale"`
	Summary   string   `json:"summary"`
	VirtualNs float64  `json:"virtual_ns"`
	WallNs    int64    `json:"wall_ns"`
	Stats     rt.Stats `json:"stats"`
}

func main() {
	app := flag.String("app", "gups", "application to run")
	model := flag.String("model", "gravel", "networking model")
	nodes := flag.Int("nodes", 8, "cluster size")
	scale := flag.Float64("scale", 1.0, "input scale factor")
	phases := flag.Bool("phases", false, "print the per-superstep virtual-time breakdown")
	group := flag.Int("groupsize", 0, "two-level hierarchical aggregation group size (gravel model only)")
	var common cliflags.Common
	common.RegisterDefault(true)
	flag.Parse()

	sess, err := common.Begin()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gravel-apps:", err)
		os.Exit(1)
	}

	var sys rt.System
	if *group > 1 {
		if *model != "gravel" {
			fmt.Fprintln(os.Stderr, "-groupsize requires -model=gravel")
			os.Exit(2)
		}
		sys = core.New(core.Config{Nodes: *nodes, GroupSize: *group})
	} else {
		sys, err = gravel.NewModelChecked(*model, *nodes, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gravel-apps:", err)
			os.Exit(2)
		}
	}
	sess.SetStats(func() *rt.Stats {
		st := sys.Stats()
		return &st
	})

	start := time.Now()
	summary := run(sys, *app, *scale)
	wall := time.Since(start)

	st := sys.Stats()
	net := st.NetStats()
	fmt.Printf("app=%s model=%s nodes=%d scale=%g\n", *app, *model, *nodes, *scale)
	fmt.Printf("  %s\n", summary)
	fmt.Printf("  virtual time: %.3f ms   (simulated in %v)\n", sys.VirtualTimeNs()/1e6, wall.Round(time.Millisecond))
	fmt.Printf("  remote accesses: %.1f%%   avg wire packet: %.0f B   agg busy: %.0f%%\n",
		100*net.RemoteFrac(), net.AvgPacketBytes, 100*net.AggBusyFrac)
	if *phases {
		printPhases(sys)
	}
	if common.JSONPath != "" {
		rep := appReport{
			App: *app, Model: *model, Nodes: *nodes, Scale: *scale,
			Summary: summary, VirtualNs: sys.VirtualTimeNs(), WallNs: wall.Nanoseconds(),
			Stats: st,
		}
		if err := writeJSON(common.JSONPath, rep); err != nil {
			fmt.Fprintln(os.Stderr, "gravel-apps:", err)
			os.Exit(1)
		}
	}
	sys.Close()
	if err := sess.End(); err != nil {
		fmt.Fprintln(os.Stderr, "gravel-apps:", err)
		os.Exit(1)
	}
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printPhases renders the superstep timeline, merging consecutive
// phases with the same name into (count, total, max) rows.
func printPhases(sys rt.System) {
	type agg struct {
		count   int
		totalNs float64
		maxNs   float64
	}
	order := []string{}
	byName := map[string]*agg{}
	for _, ph := range sys.Phases() {
		a, ok := byName[ph.Name]
		if !ok {
			a = &agg{}
			byName[ph.Name] = a
			order = append(order, ph.Name)
		}
		a.count++
		a.totalNs += ph.PhaseNs
		if ph.PhaseNs > a.maxNs {
			a.maxNs = ph.PhaseNs
		}
	}
	fmt.Printf("  %-14s %8s %12s %12s %12s\n", "phase", "count", "total ms", "avg us", "max us")
	for _, name := range order {
		a := byName[name]
		fmt.Printf("  %-14s %8d %12.3f %12.1f %12.1f\n",
			name, a.count, a.totalNs/1e6, a.totalNs/float64(a.count)/1e3, a.maxNs/1e3)
	}
}

func run(sys rt.System, app string, scale float64) string {
	s := func(base int) int {
		v := int(float64(base) * scale)
		if v < 64 {
			v = 64
		}
		return v
	}
	bubbles := func() *graph.Graph {
		g := graph.Bubbles(s(42000), 1)
		g.EnsureWeights()
		return g
	}
	cage := func() *graph.Graph {
		g := graph.Cage(s(40000), 1)
		g.EnsureWeights()
		return g
	}
	switch app {
	case "gups":
		r := gups.Run(sys, gups.Config{TableSize: s(1 << 20), UpdatesPerNode: s(1_440_000) / sys.Nodes(), Seed: 13})
		return fmt.Sprintf("updates=%d sum=%d virtual GUPS=%.4f", r.Updates, r.Sum, r.GUPS)
	case "gups-mod":
		r := gups.RunMod(sys, gups.ModConfig{TableSize: s(1 << 18), WIsPerNode: s(1 << 19), Seed: 1})
		return fmt.Sprintf("updates=%d sum=%d", r.Updates, r.Sum)
	case "pagerank-1", "pagerank-2":
		g := bubbles()
		if app == "pagerank-2" {
			g = cage()
		}
		r := pagerank.Run(sys, pagerank.Config{G: g, Iters: 10})
		return fmt.Sprintf("%v rankSum=%.1f checksum=%016x", g, r.RankSum, r.Checksum)
	case "sssp-1", "sssp-2":
		g := bubbles()
		if app == "sssp-2" {
			g = cage()
		}
		r := sssp.Run(sys, sssp.Config{G: g, Source: 0})
		return fmt.Sprintf("%v reached=%d supersteps=%d distSum=%d", g, r.Reached, r.Supersteps, r.DistSum)
	case "color-1", "color-2":
		g := bubbles()
		if app == "color-2" {
			g = cage()
		}
		r := color.Run(sys, color.Config{G: g, Seed: 7})
		if err := color.Validate(g, r.ColorAt); err != nil {
			return fmt.Sprintf("INVALID COLORING: %v", err)
		}
		return fmt.Sprintf("%v colors=%d rounds=%d (validated)", g, r.Colors, r.Rounds)
	case "kmeans":
		r := kmeans.Run(sys, kmeans.Config{PointsPerNode: s(160_000) / sys.Nodes(), K: 8, Dims: 2, Iters: 8, Seed: 3})
		return fmt.Sprintf("clusters=%d iters=%d counts=%v", len(r.Counts), r.Iters, r.Counts)
	case "mer":
		r := mer.Run(sys, mer.Config{GenomeLen: s(100_000), ReadsPerNode: s(16_000) / sys.Nodes(), ReadLen: 80, K: 19, Seed: 9})
		return fmt.Sprintf("kmers inserted=%d distinct=%d (expected %d)", r.Inserted, r.Distinct, r.Expected)
	case "mer-full":
		// Phases 1 + 2: table construction then contig traversal (the
		// paper's future work, built on AM request/reply).
		r1, r2 := mer.RunFull(sys, mer.Config{GenomeLen: s(100_000), ReadsPerNode: s(16_000) / sys.Nodes(), ReadLen: 80, K: 19, Seed: 9, ErrorPerMille: 3})
		return fmt.Sprintf("phase1: %d kmers (%d distinct); phase2: %d contigs, total len %d, max %d, UU %d",
			r1.Inserted, r1.Distinct, r2.Contigs, r2.TotalLen, r2.MaxLen, r2.UU)
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q\n", app)
		os.Exit(2)
		return ""
	}
}
