// Command gravel-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	gravel-bench -exp=fig12 [-scale=1.0]
//	gravel-bench -exp=all [-json=results.json] [-cpuprofile=cpu.pprof]
//
// Experiments: table2, table5, fig6, fig8, fig12, fig13, fig14, fig15,
// sec82, hier, ablations, resolver, pgas, aggstrategy, all. An unknown
// -exp name fails with the list of valid names, mirroring the app
// registry's unknown-app error.
//
// With -json, every experiment's table is also written to the given
// path as machine-readable JSON, with per-experiment wall time and
// allocation totals (MemStats deltas) alongside a headline metric —
// the first numeric cell of the first row — so CI can diff runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"gravel/internal/bench"
	"gravel/internal/buildinfo"
	"gravel/internal/cliflags"
)

// expResult is one experiment's machine-readable record.
type expResult struct {
	Name           string     `json:"name"`
	Title          string     `json:"title"`
	HeadlineMetric string     `json:"headline_metric"`
	HeadlineValue  float64    `json:"headline_value"`
	NsPerOp        int64      `json:"ns_per_op"`
	BytesPerOp     uint64     `json:"bytes_per_op"`
	AllocsPerOp    uint64     `json:"allocs_per_op"`
	Header         []string   `json:"header"`
	Rows           [][]string `json:"rows"`
	Notes          []string   `json:"notes,omitempty"`
}

// report is the top-level -json document.
type report struct {
	GeneratedUnix int64       `json:"generated_unix"`
	GoVersion     string      `json:"go_version"`
	GoMaxProcs    int         `json:"gomaxprocs"`
	Scale         float64     `json:"scale"`
	Experiments   []expResult `json:"experiments"`
}

// headline extracts a deterministic headline metric from a table: the
// first cell of the first row that parses as a number (column 0 is the
// row label), named "<row label>: <column header>".
func headline(t *bench.Table) (metric string, value float64) {
	for _, row := range t.Rows {
		for i := 1; i < len(row); i++ {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[i], "x"), 64)
			if err != nil {
				continue
			}
			col := ""
			if i < len(t.Header) {
				col = t.Header[i]
			}
			return fmt.Sprintf("%s: %s", row[0], col), v
		}
	}
	return "", 0
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (table2, table5, fig6, fig8, fig12, fig13, fig14, fig15, sec82, hier, ablations, resolver, pgas, aggstrategy, all)")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = default reduced inputs)")
	format := flag.String("format", "table", "output format: table or csv")
	version := flag.Bool("version", false, "print the build-info string and exit")
	var common cliflags.Common
	common.RegisterDefault(true)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Full("gravel-bench"))
		return
	}
	jsonPath := &common.JSONPath

	sess, err := common.Begin()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gravel-bench: %v\n", err)
		os.Exit(1)
	}

	rep := report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Scale:         *scale,
	}

	// exps is the experiment registry, in presentation order. The -exp
	// flag is validated against it before anything runs, so a typo fails
	// loudly with the list of valid names instead of silently printing
	// nothing.
	exps := []struct {
		name string
		f    func() *bench.Table
	}{
		{"fig6", func() *bench.Table { return bench.Fig6() }},
		{"fig8", func() *bench.Table { return bench.Fig8() }},
		{"table2", func() *bench.Table { return bench.Table2() }},
		{"table5", func() *bench.Table { return bench.Table5(*scale, nil) }},
		{"fig12", func() *bench.Table { return bench.Fig12(*scale, nil) }},
		{"fig13", func() *bench.Table { return bench.Fig13(*scale, nil) }},
		{"fig14", func() *bench.Table { return bench.Fig14(*scale, nil) }},
		{"fig15", func() *bench.Table { return bench.Fig15(*scale, nil) }},
		{"sec82", func() *bench.Table { return bench.Sec82(*scale, nil) }},
		{"hier", func() *bench.Table { return bench.Hier(*scale, nil) }},
		{"ablations", func() *bench.Table { return bench.Ablations(*scale, nil) }},
		{"resolver", func() *bench.Table { return bench.Resolver(*scale, nil, common.ResolverShards) }},
		{"pgas", func() *bench.Table { return bench.PGAS(*scale, nil) }},
		{"aggstrategy", func() *bench.Table { return bench.AggStrategy(*scale, nil) }},
	}
	if *exp != "all" {
		known := false
		names := make([]string, len(exps))
		for i, e := range exps {
			names[i] = e.name
			known = known || e.name == *exp
		}
		if !known {
			fmt.Fprintf(os.Stderr, "gravel-bench: unknown experiment %q (have %s, all)\n", *exp, strings.Join(names, ", "))
			os.Exit(1)
		}
	}

	run := func(name string, f func() *bench.Table) {
		if *exp != "all" && *exp != name {
			return
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		t := f()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if *jsonPath != "" {
			metric, value := headline(t)
			rep.Experiments = append(rep.Experiments, expResult{
				Name:           name,
				Title:          t.Title,
				HeadlineMetric: metric,
				HeadlineValue:  value,
				NsPerOp:        elapsed.Nanoseconds(),
				BytesPerOp:     after.TotalAlloc - before.TotalAlloc,
				AllocsPerOp:    after.Mallocs - before.Mallocs,
				Header:         t.Header,
				Rows:           t.Rows,
				Notes:          t.Notes,
			})
		}
		if *format == "csv" {
			t.Fcsv(os.Stdout)
			return
		}
		t.Fprint(os.Stdout)
		fmt.Printf("  [%s ran in %v]\n", name, elapsed.Round(time.Millisecond))
	}

	for _, e := range exps {
		run(e.name, e.f)
	}

	if *jsonPath != "" {
		out, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "gravel-bench: %v\n", err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "gravel-bench: %v\n", err)
			os.Exit(1)
		}
	}

	if err := sess.End(); err != nil {
		fmt.Fprintf(os.Stderr, "gravel-bench: %v\n", err)
		os.Exit(1)
	}
}
