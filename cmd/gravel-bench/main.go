// Command gravel-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	gravel-bench -exp=fig12 [-scale=1.0]
//	gravel-bench -exp=all
//
// Experiments: table2, table5, fig6, fig8, fig12, fig13, fig14, fig15,
// sec82, hier, ablations, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gravel/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table2, table5, fig6, fig8, fig12, fig13, fig14, fig15, sec82, hier, ablations, all)")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = default reduced inputs)")
	format := flag.String("format", "table", "output format: table or csv")
	flag.Parse()

	run := func(name string, f func() *bench.Table) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		t := f()
		if *format == "csv" {
			t.Fcsv(os.Stdout)
			return
		}
		t.Fprint(os.Stdout)
		fmt.Printf("  [%s ran in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("fig6", func() *bench.Table { return bench.Fig6() })
	run("fig8", func() *bench.Table { return bench.Fig8() })
	run("table2", func() *bench.Table { return bench.Table2() })
	run("table5", func() *bench.Table { return bench.Table5(*scale, nil) })
	run("fig12", func() *bench.Table { return bench.Fig12(*scale, nil) })
	run("fig13", func() *bench.Table { return bench.Fig13(*scale, nil) })
	run("fig14", func() *bench.Table { return bench.Fig14(*scale, nil) })
	run("fig15", func() *bench.Table { return bench.Fig15(*scale, nil) })
	run("sec82", func() *bench.Table { return bench.Sec82(*scale, nil) })
	run("hier", func() *bench.Table { return bench.Hier(*scale, nil) })
	run("ablations", func() *bench.Table { return bench.Ablations(*scale, nil) })
}
