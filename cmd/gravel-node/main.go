// Command gravel-node runs a Gravel cluster as real OS processes over
// the TCP transport: one worker process per node plus a rendezvous
// coordinator. Every registered application and every networking model
// runs unmodified — the harness registry that drives the in-process
// binaries also drives this one — so the Figure 15 model sweep can run
// as a real multi-process cluster. Each worker launches its own node's
// share of the work and the coordinator reduces the per-shard results.
//
// Modes:
//
//	gravel-node -serve -listen :7777 -nodes 4     rendezvous coordinator
//	gravel-node -node 2 -nodes 4 -coord :7777     worker hosting node 2
//	gravel-node -smoke -nodes 4                   self-contained localhost
//	                                              run, checked against the
//	                                              in-process fabric
//	gravel-node -chaos -seed 1 -duration 30s      chaos harness: smoke runs
//	                                              under seeded fault schedules
//	                                              plus worker/coordinator kills
//	gravel-node -list                             registered apps and models
//
// Any registered app (-app, see -list) and model (-model) works in
// every mode, e.g.:
//
//	gravel-node -smoke -nodes 3 -model=coprocessor -app=gups
//
// Workers print one JSON result line on stdout. The smoke mode forks
// one worker per node, runs the coordinator itself, and verifies that
// the reduced distributed checksum equals the single-process run's —
// the distributed fabric must be invisible to application results.
//
// Workers accept a fault-injection schedule via -faults (or the
// GRAVEL_FAULTS env var), e.g. `seed=7,drop=0.02,delay=0.2/5ms`, and
// failure-detection cadence via -suspect / -heartbeat. A worker whose
// peer or coordinator dies exits nonzero with the typed error and a
// per-destination stats + fault-log dump on stderr. The chaos mode
// cycles three iteration kinds — recoverable schedules that must stay
// bit-exact, a SIGKILLed worker, a killed coordinator — with every
// schedule derived from -seed so failures replay exactly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"gravel"
	"gravel/internal/cliflags"
	"gravel/internal/core"
	"gravel/internal/harness"
	"gravel/internal/obs"
	"gravel/internal/rt"
	"gravel/internal/transport"
	"gravel/internal/transport/fault"
)

var (
	serve = flag.Bool("serve", false, "run the rendezvous coordinator")
	smoke = flag.Bool("smoke", false, "fork a full localhost cluster and verify it against the in-process fabric")
	chaos = flag.Bool("chaos", false, "run the chaos harness: repeated distributed runs under seeded fault schedules and process kills")
	list  = flag.Bool("list", false, "list registered apps, models and transports, then exit")

	node   = flag.Int("node", -1, "node this worker hosts")
	nodes  = flag.Int("nodes", 4, "cluster size")
	coord  = flag.String("coord", "", "coordinator address (host:port)")
	listen = flag.String("listen", "127.0.0.1:0", "listen address (coordinator or worker transport)")
	wall   = flag.Bool("wall", false, "charge measured wall-clock time for wire activity instead of the virtual cost model")

	app     = flag.String("app", "gups", "application to run (see -list)")
	model   = flag.String("model", "gravel", "networking model (see -list)")
	scale   = flag.Float64("scale", 1.0, "input scale factor for app-default sizes")
	table   = flag.Int("table", 1<<16, "gups family: global table size (0 = app default)")
	updates = flag.Int("updates", 1<<12, "gups family: updates/work-items per node (0 = app default)")
	steps   = flag.Int("steps", 2, "gups: kernel launches (0 = app default)")
	seed    = flag.Uint64("seed", 0, "deterministic seed (0 = app default)")
	verts   = flag.Int("verts", 0, "pagerank: vertex count (0 = app default)")
	iters   = flag.Int("iters", 0, "iterative apps: iteration count (0 = app default)")

	faults = flag.String("faults", "",
		`deterministic fault schedule, e.g. "seed=7,drop=0.02,dup=0.01,delay=0.2:5ms,sever=0.002:1" (default $GRAVEL_FAULTS; empty/off disables)`)
	suspectFlag     = flag.Duration("suspect", 0, "declare a silent peer down after this long (0 = 30s default, <0 disables)")
	heartbeatFlag   = flag.Duration("heartbeat", 0, "peer/coordinator heartbeat period (0 = suspect/4)")
	coordTimeout    = flag.Duration("coord-timeout", 0, "coordinator dial budget (0 = 30s default)")
	coordBackoff    = flag.Duration("coord-backoff", 0, "initial coordinator dial retry backoff (0 = 10ms default)")
	coordBackoffMax = flag.Duration("coord-backoff-max", 0, "coordinator dial retry backoff ceiling (0 = 1s default)")
	coordRPCTimeout = flag.Duration("coord-rpc-timeout", 0, "per-RPC coordinator deadline (0 = 15s default, <0 disables)")
	duration        = flag.Duration("duration", 30*time.Second, "chaos: how long to keep iterating")

	checkTrace = flag.String("check-trace", "", "validate a flight-recorder JSONL trace file against the schema and exit")

	// common is the shared observability/profiling flag surface
	// (-json, -trace, -obs-addr, -cpuprofile, -memprofile).
	common cliflags.Common
)

func init() { common.RegisterDefault(true) }

// workerParams maps the flag surface onto the registry's parameter
// surface; zero-valued flags resolve to each app's registered default,
// identically in every process.
func workerParams() harness.Params {
	return harness.Params{
		Scale:   *scale,
		Seed:    *seed,
		Table:   *table,
		Updates: *updates,
		Steps:   *steps,
		Verts:   *verts,
		Iters:   *iters,
	}
}

// result is the JSON line a worker prints. LocalSum is the worker
// shard's additive checksum (table sum, rank sum, insert count, ...);
// TotalSum is the cluster-wide reduction of it.
type result struct {
	Node     int     `json:"node"`
	App      string  `json:"app"`
	Model    string  `json:"model"`
	Summary  string  `json:"summary"`
	LocalSum uint64  `json:"local_sum"`
	TotalSum uint64  `json:"total_sum"`
	Ns       float64 `json:"ns"`
	Sent     int64   `json:"wire_pkts_sent"`
	Recon    int64   `json:"reconnects"`
}

func main() {
	flag.Parse()
	if *checkTrace != "" {
		ev, err := obs.ValidateJSONLFile(*checkTrace)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("check-trace: %s: %d events, schema v%d, timestamps monotonic\n",
			*checkTrace, len(ev), obs.SchemaVersion)
		return
	}
	if *list {
		if err := harness.PrintList(common.JSONPath); err != nil {
			fatal(err)
		}
		return
	}
	// Validate cross-cutting flags up front so misconfiguration is a
	// one-line error, not a worker-side diagnostic dump.
	if !*serve && *model != "" {
		if err := (gravel.Config{Model: *model, Nodes: 1}).Validate(); err != nil {
			fatal(err)
		}
	}
	sess, err := common.Begin()
	if err != nil {
		fatal(err)
	}
	err = dispatch(sess)
	// The session must end before exiting (flush the CPU profile, drain
	// the trace, stop the observability server) — fatal would skip the
	// deferred path.
	if endErr := sess.End(); err == nil {
		err = endErr
	}
	if err != nil {
		fatal(err)
	}
}

func dispatch(sess *cliflags.Session) error {
	switch {
	case *serve:
		return runCoordinator()
	case *smoke:
		return runSmoke(sess)
	case *chaos:
		return runChaos()
	case *node >= 0:
		return runWorker(sess)
	default:
		flag.Usage()
		os.Exit(2)
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gravel-node:", err)
	os.Exit(1)
}

// runCoordinator serves the rendezvous point until every worker has
// said goodbye.
func runCoordinator() error {
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Println(ln.Addr().String()) // so scripts can discover the port
	c := transport.NewCoordinator(*nodes)
	go func() {
		<-c.Done()
		ln.Close()
	}()
	c.Serve(ln)
	return nil
}

// runWorker hosts one node: it joins the cluster through the
// coordinator, runs the selected application's shard on the selected
// model, folds the local result into the cluster-wide reduction, and
// prints both. On a fatal transport error (a peer or the coordinator
// declared down, surfaced as a typed error from the runtime) it exits
// nonzero after dumping per-destination wire statistics and the
// injected-fault log to stderr.
func runWorker(sess *cliflags.Session) (err error) {
	if *coord == "" {
		return fmt.Errorf("worker needs -coord")
	}
	if *node >= *nodes {
		return fmt.Errorf("-node %d out of range for -nodes %d", *node, *nodes)
	}
	a, err := harness.LookupApp(*app)
	if err != nil {
		return err
	}
	spec := *faults
	if spec == "" {
		spec = os.Getenv("GRAVEL_FAULTS")
	}
	fcfg, err := fault.Parse(spec)
	if err != nil {
		return fmt.Errorf("-faults: %w", err)
	}
	var (
		sys gravel.System
		tcp *transport.TCP
	)
	// Transport failures (and misconfigurations) surface as panics on
	// the Step goroutine carrying typed errors (transport.PeerDownError,
	// transport.CoordDownError). Recover them into a diagnosed nonzero
	// exit. On failure the transport is killed, not closed: a graceful
	// drain toward a dead peer would stall the exit past the failure
	// detector's own bound.
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("%v", r)
			}
		}
		if err != nil {
			dumpDiagnostics(sys, tcp)
			if tcp != nil {
				tcp.Kill()
			}
		} else if sys != nil {
			sys.Close()
		}
	}()
	sys, err = gravel.NewChecked(gravel.Config{
		Model:     *model,
		Nodes:     *nodes,
		Transport: "tcp",
		Faults:    fcfg,
		TransportOpts: gravel.TransportOptions{
			Self:                *node,
			Listen:              *listen,
			Coord:               *coord,
			WallClock:           *wall,
			SuspectTimeout:      *suspectFlag,
			HeartbeatInterval:   *heartbeatFlag,
			CoordDialTimeout:    *coordTimeout,
			CoordDialBackoff:    *coordBackoff,
			CoordDialBackoffMax: *coordBackoffMax,
			CoordRPCTimeout:     *coordRPCTimeout,
		},
	})
	if err != nil {
		return err
	}

	var ok bool
	tcp, ok = sys.(interface{ Fabric() core.Fabric }).Fabric().(*transport.TCP)
	if !ok {
		return fmt.Errorf("fabric is not the TCP transport")
	}
	// Wire the observability endpoint to this worker's runtime: /healthz
	// surfaces the transport failure detector's verdict, /metrics the
	// live Stats snapshot.
	sess.SetHealth(tcp.Err)
	sess.SetStats(func() *rt.Stats {
		st := sys.Stats()
		return &st
	})

	// The shard's superstep collectives (frontier emptiness, k-means
	// accumulators) ride the coordinator's keyed reduction.
	p := workerParams()
	shard := a.Shard(sys, *node, p, tcp.Reduce)

	total, err := tcp.Reduce(*app+":sum", shard.Check)
	if err != nil {
		return err
	}
	if a.VerifyTotal != nil {
		if err := a.VerifyTotal(total, p, *nodes); err != nil {
			return err
		}
	}
	stats := sys.NetStats()
	res := result{
		Node:     *node,
		App:      *app,
		Model:    *model,
		Summary:  shard.Summary,
		LocalSum: shard.Check,
		TotalSum: total,
		Ns:       shard.Ns,
		Sent:     sumPkts(stats),
		Recon:    stats.Reconnects,
	}
	if common.JSONPath != "" {
		if err := writeJSON(common.JSONPath, res); err != nil {
			return err
		}
	}
	return json.NewEncoder(os.Stdout).Encode(res)
}

// writeJSON writes v to path as one JSON document.
func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func sumPkts(s gravel.NetStats) int64 {
	var n int64
	for _, d := range s.PerDest {
		n += d.Packets
	}
	return n
}

// dumpDiagnostics writes the failure-time picture to stderr: per-dest
// wire statistics and, when fault injection is on, the injected-fault
// counters and log tail — everything needed to replay and localize a
// failed chaos run from its seed.
func dumpDiagnostics(sys gravel.System, tcp *transport.TCP) {
	fmt.Fprintf(os.Stderr, "gravel-node: diagnostic dump (node %d)\n", *node)
	if sys != nil {
		s := sys.NetStats()
		fmt.Fprintf(os.Stderr, "  wire: %d pkts, %d bytes; reconnects=%d retries=%d malformed=%d corrupt=%d\n",
			s.WirePackets, s.WireBytes, s.Reconnects, s.Retries, s.Malformed, s.CorruptFrames)
		for d, pd := range s.PerDest {
			if pd.Packets > 0 {
				fmt.Fprintf(os.Stderr, "  -> node %d: %d pkts, %d bytes\n", d, pd.Packets, pd.Bytes)
			}
		}
	}
	if tcp == nil {
		return
	}
	if err := tcp.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "  transport error: %v\n", err)
	}
	if inj := tcp.FaultInjector(); inj.Enabled() {
		fmt.Fprintf(os.Stderr, "  faults injected: %s (seed %d)\n", inj.Counters(), inj.Config().Seed)
		for _, e := range inj.Log() {
			fmt.Fprintf(os.Stderr, "    %s\n", e)
		}
	}
}

// workerArgs builds the base argument list forwarded to a forked
// worker: its identity plus the full app/model/parameter surface, so
// every process resolves the same workload.
func workerArgs(i int, coordAddr string) []string {
	return []string{
		"-node", strconv.Itoa(i),
		"-nodes", strconv.Itoa(*nodes),
		"-coord", coordAddr,
		"-app", *app,
		"-model", *model,
		"-scale", strconv.FormatFloat(*scale, 'g', -1, 64),
		"-table", strconv.Itoa(*table),
		"-updates", strconv.Itoa(*updates),
		"-steps", strconv.Itoa(*steps),
		"-seed", strconv.FormatUint(*seed, 10),
		"-verts", strconv.Itoa(*verts),
		"-iters", strconv.Itoa(*iters),
	}
}

// runSmoke is the end-to-end check: it runs the coordinator in-process,
// forks one worker per node over localhost, and verifies the reduced
// distributed checksum of the selected app and model against the
// single-process channel fabric. With -trace/-obs-addr the in-process
// reference run feeds the flight recorder and the /metrics endpoint.
func runSmoke(sess *cliflags.Session) error {
	a, err := harness.LookupApp(*app)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	c := transport.NewCoordinator(*nodes)
	go c.Serve(ln)
	defer ln.Close()

	exe, err := os.Executable()
	if err != nil {
		return err
	}
	results := make([]result, *nodes)
	errs := make([]error, *nodes)
	var wg sync.WaitGroup
	for i := 0; i < *nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cmd := exec.Command(exe, workerArgs(i, ln.Addr().String())...)
			cmd.Stderr = os.Stderr
			out, err := cmd.Output()
			if err != nil {
				errs[i] = fmt.Errorf("worker %d: %w", i, err)
				return
			}
			if err := json.Unmarshal(out, &results[i]); err != nil {
				errs[i] = fmt.Errorf("worker %d output: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Reference: the identical run on the in-process channel fabric.
	ref, err := gravel.NewChecked(gravel.Config{Model: *model, Nodes: *nodes})
	if err != nil {
		return err
	}
	refRes := a.Run(ref, workerParams())
	refStats := ref.Stats()
	sess.SetStats(func() *rt.Stats { return &refStats })
	ref.Close()
	if refRes.Err != nil {
		return fmt.Errorf("in-process reference failed verification: %w", refRes.Err)
	}

	var localTotal uint64
	for _, r := range results {
		localTotal += r.LocalSum
		if r.TotalSum != results[0].TotalSum {
			return fmt.Errorf("workers disagree on the reduced sum: %d vs %d", r.TotalSum, results[0].TotalSum)
		}
	}
	fmt.Printf("smoke: app=%s model=%s %d workers, distributed check %d (reduced %d), in-process check %d\n",
		*app, *model, *nodes, localTotal, results[0].TotalSum, refRes.Check)
	if localTotal != refRes.Check || results[0].TotalSum != refRes.Check {
		return fmt.Errorf("distributed run diverged from the in-process fabric")
	}
	fmt.Println("smoke: PASS")
	return nil
}
