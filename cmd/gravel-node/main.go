// Command gravel-node runs a Gravel cluster as real OS processes over
// the TCP transport: one worker process per node plus a rendezvous
// coordinator. Every registered application and every networking model
// runs unmodified — the harness registry that drives the in-process
// binaries also drives this one — so the Figure 15 model sweep can run
// as a real multi-process cluster. The run lifecycle itself (worker
// spawn, rendezvous, collect, teardown) lives in internal/noderun;
// this binary is the thin flag surface over it, and gravel-server
// schedules the same lifecycle as a service.
//
// Modes:
//
//	gravel-node -serve -listen :7777 -nodes 4     rendezvous coordinator
//	gravel-node -node 2 -nodes 4 -coord :7777     worker hosting node 2
//	gravel-node -smoke -nodes 4                   self-contained localhost
//	                                              run, checked against the
//	                                              in-process fabric
//	gravel-node -chaos -seed 1 -duration 30s      chaos harness: smoke runs
//	                                              under seeded fault schedules
//	                                              plus worker/coordinator kills
//	                                              and healed elastic kills
//	gravel-node -scaleout -json BENCH_PR7.json    live 2->4 elastic scale-out
//	                                              with per-epoch throughput
//	gravel-node -list                             registered apps and models
//
// Any registered app (-app, see -list) and model (-model) works in
// every mode, e.g.:
//
//	gravel-node -smoke -nodes 3 -model=coprocessor -app=gups
//
// Workers print one JSON result line on stdout. The smoke mode forks
// one worker per node, runs the coordinator itself, and verifies that
// the reduced distributed checksum equals the single-process run's —
// the distributed fabric must be invisible to application results.
//
// Workers accept a fault-injection schedule via -faults (or the
// GRAVEL_FAULTS env var), e.g. `seed=7,drop=0.02,delay=0.2/5ms`, and
// failure-detection cadence via -suspect / -heartbeat. A worker whose
// peer or coordinator dies exits nonzero with the typed error and a
// per-destination stats + fault-log dump on stderr. The chaos mode
// cycles four iteration kinds — recoverable schedules that must stay
// bit-exact, a SIGKILLed worker, a killed coordinator, and a SIGKILLed
// worker under an elastic spec that the run must heal from — with
// every schedule derived from -seed so failures replay exactly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"gravel"
	"gravel/internal/buildinfo"
	"gravel/internal/cliflags"
	"gravel/internal/harness"
	"gravel/internal/noderun"
	"gravel/internal/obs"
	"gravel/internal/rt"
	"gravel/internal/transport"
)

var (
	serve    = flag.Bool("serve", false, "run the rendezvous coordinator")
	smoke    = flag.Bool("smoke", false, "fork a full localhost cluster and verify it against the in-process fabric")
	chaos    = flag.Bool("chaos", false, "run the chaos harness: repeated distributed runs under seeded fault schedules and process kills")
	scaleout = flag.Bool("scaleout", false, "bench a live 2->4 elastic scale-out and write per-epoch throughput (-json, default BENCH_PR7.json)")
	list     = flag.Bool("list", false, "list registered apps, models and transports, then exit")
	version  = flag.Bool("version", false, "print the build-info string and exit")

	node   = flag.Int("node", -1, "node this worker hosts")
	nodes  = flag.Int("nodes", 4, "cluster size")
	coord  = flag.String("coord", "", "coordinator address (host:port)")
	listen = flag.String("listen", "127.0.0.1:0", "listen address (coordinator or worker transport)")
	wall   = flag.Bool("wall", false, "charge measured wall-clock time for wire activity instead of the virtual cost model")

	app     = flag.String("app", "gups", "application to run (see -list)")
	model   = flag.String("model", "gravel", "networking model (see -list)")
	scale   = flag.Float64("scale", 1.0, "input scale factor for app-default sizes")
	table   = flag.Int("table", 1<<16, "gups family: global table size (0 = app default)")
	updates = flag.Int("updates", 1<<12, "gups family: updates/work-items per node (0 = app default)")
	steps   = flag.Int("steps", 2, "gups: kernel launches (0 = app default)")
	seed    = flag.Uint64("seed", 0, "deterministic seed (0 = app default)")
	verts   = flag.Int("verts", 0, "pagerank: vertex count (0 = app default)")
	iters   = flag.Int("iters", 0, "iterative apps: iteration count (0 = app default)")

	faults = flag.String("faults", "",
		`deterministic fault schedule, e.g. "seed=7,drop=0.02,dup=0.01,delay=0.2:5ms,sever=0.002:1" (default $GRAVEL_FAULTS; empty/off disables)`)
	suspectFlag     = flag.Duration("suspect", 0, "declare a silent peer down after this long (0 = 30s default, <0 disables)")
	heartbeatFlag   = flag.Duration("heartbeat", 0, "peer/coordinator heartbeat period (0 = suspect/4)")
	coordTimeout    = flag.Duration("coord-timeout", 0, "coordinator dial budget (0 = 30s default)")
	coordBackoff    = flag.Duration("coord-backoff", 0, "initial coordinator dial retry backoff (0 = 10ms default)")
	coordBackoffMax = flag.Duration("coord-backoff-max", 0, "coordinator dial retry backoff ceiling (0 = 1s default)")
	coordRPCTimeout = flag.Duration("coord-rpc-timeout", 0, "per-RPC coordinator deadline (0 = 15s default, <0 disables)")
	duration        = flag.Duration("duration", 30*time.Second, "chaos: how long to keep iterating")

	checkTrace = flag.String("check-trace", "", "validate a flight-recorder JSONL trace file against the schema and exit")

	// common is the shared observability/profiling flag surface
	// (-json, -trace, -obs-addr, -cpuprofile, -memprofile).
	common cliflags.Common
)

func init() { common.RegisterDefault(true) }

// workerParams maps the flag surface onto the registry's parameter
// surface; zero-valued flags resolve to each app's registered default,
// identically in every process.
func workerParams() harness.Params {
	return harness.Params{
		Scale:   *scale,
		Seed:    *seed,
		Table:   *table,
		Updates: *updates,
		Steps:   *steps,
		Verts:   *verts,
		Iters:   *iters,
	}
}

// specFromFlags is the full flag surface as a noderun Spec (fabric
// unset; each mode picks its own).
func specFromFlags() noderun.Spec {
	fspec := *faults
	if fspec == "" {
		fspec = os.Getenv("GRAVEL_FAULTS")
	}
	return noderun.Spec{
		App:             *app,
		Model:           *model,
		Nodes:           *nodes,
		Params:          workerParams(),
		Faults:          fspec,
		WallClock:       *wall,
		ResolverShards:  common.ResolverShards,
		Suspect:         *suspectFlag,
		Heartbeat:       *heartbeatFlag,
		CoordTimeout:    *coordTimeout,
		CoordBackoff:    *coordBackoff,
		CoordBackoffMax: *coordBackoffMax,
		CoordRPCTimeout: *coordRPCTimeout,
	}
}

func main() {
	// A process launched by a noderun exec fabric (smoke, chaos,
	// gravel-server's worker pool) is a cluster worker, nothing else.
	noderun.MaybeWorkerMain()
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Full("gravel-node"))
		return
	}
	if *checkTrace != "" {
		ev, err := obs.ValidateJSONLFile(*checkTrace)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("check-trace: %s: %d events, schema v%d, timestamps monotonic\n",
			*checkTrace, len(ev), obs.SchemaVersion)
		return
	}
	if *list {
		if err := harness.PrintList(common.JSONPath); err != nil {
			fatal(err)
		}
		return
	}
	// Validate cross-cutting flags up front so misconfiguration is a
	// one-line error, not a worker-side diagnostic dump.
	if !*serve && *model != "" {
		if err := (gravel.Config{Model: *model, Nodes: 1, ResolverShards: common.ResolverShards}).Validate(); err != nil {
			fatal(err)
		}
	}
	sess, err := common.Begin()
	if err != nil {
		fatal(err)
	}
	err = dispatch(sess)
	// The session must end before exiting (flush the CPU profile, drain
	// the trace, stop the observability server) — fatal would skip the
	// deferred path.
	if endErr := sess.End(); err == nil {
		err = endErr
	}
	if err != nil {
		fatal(err)
	}
}

func dispatch(sess *cliflags.Session) error {
	switch {
	case *serve:
		return runCoordinator()
	case *smoke:
		return runSmoke(sess)
	case *chaos:
		return runChaos()
	case *scaleout:
		return runScaleOut(common.JSONPath)
	case *node >= 0:
		return runWorker(sess)
	default:
		flag.Usage()
		os.Exit(2)
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gravel-node:", err)
	os.Exit(1)
}

// runCoordinator serves the rendezvous point until every worker has
// said goodbye.
func runCoordinator() error {
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Println(ln.Addr().String()) // so scripts can discover the port
	c := transport.NewCoordinator(*nodes)
	go func() {
		<-c.Done()
		ln.Close()
	}()
	c.Serve(ln)
	return nil
}

// runWorker hosts one node through noderun's worker lifecycle, wiring
// the observability session (-obs-addr) into the live runtime, and
// prints the JSON result line.
func runWorker(sess *cliflags.Session) error {
	if *coord == "" {
		return fmt.Errorf("worker needs -coord")
	}
	res, err := noderun.RunWorker(noderun.WorkerConfig{
		Node:   *node,
		Coord:  *coord,
		Listen: *listen,
		Spec:   specFromFlags(),
		OnSystem: func(sys gravel.System, tcp *transport.TCP) {
			// /healthz surfaces the transport failure detector's verdict,
			// /metrics the live Stats snapshot.
			sess.SetHealth(tcp.Err)
			sess.SetStats(func() *rt.Stats {
				st := sys.Stats()
				return &st
			})
		},
		Diag: os.Stderr,
	})
	if err != nil {
		return err
	}
	if common.JSONPath != "" {
		if err := cliflags.WriteJSON(common.JSONPath, res); err != nil {
			return err
		}
	}
	return json.NewEncoder(os.Stdout).Encode(res)
}

// printWorkerFailures relays failed workers' diagnoses (typed
// transport errors, fault logs) to stderr.
func printWorkerFailures(res *noderun.RunResult) {
	if res == nil {
		return
	}
	for _, w := range res.Workers {
		if w.Err == "" {
			continue
		}
		fmt.Fprintf(os.Stderr, "worker %d: %s\n", w.Node, w.Err)
		if w.Stderr != "" {
			fmt.Fprintln(os.Stderr, w.Stderr)
		}
	}
}

// runSmoke is the end-to-end check: it launches the exec fabric (one
// forked worker process per node plus an in-process coordinator) and
// verifies the reduced distributed checksum of the selected app and
// model against the single-process channel fabric. With
// -trace/-obs-addr the in-process reference run feeds the flight
// recorder and the /metrics endpoint.
func runSmoke(sess *cliflags.Session) error {
	s := specFromFlags()
	s.Fabric = noderun.FabricExec
	var l noderun.Launcher
	res, err := l.Run(context.Background(), s)
	if err != nil {
		printWorkerFailures(res)
		return err
	}

	// Reference: the identical run on the in-process channel fabric.
	sref := s
	sref.Fabric = noderun.FabricLocal
	ref, err := noderun.RunLocal(sref)
	if err != nil {
		return err
	}
	sess.SetStats(func() *rt.Stats { return ref.Stats })

	fmt.Printf("smoke: app=%s model=%s %d workers, distributed check %d (reduced %d), in-process check %d\n",
		s.App, s.Model, s.Nodes, res.Check, res.Check, ref.Check)
	if res.Check != ref.Check {
		return fmt.Errorf("distributed run diverged from the in-process fabric")
	}
	fmt.Println("smoke: PASS")
	return nil
}
