package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"gravel/internal/harness"
	"gravel/internal/noderun"
	"gravel/internal/transport/fault"
)

// The chaos harness proves the distributed runtime's failure story
// end to end, with real processes (noderun's exec fabric):
//
//   - recoverable iterations run the 4-process GUPS smoke under a
//     seeded fault schedule (drops, duplicates, delays, reordering,
//     corruption, severs) and require the reduced sum to stay
//     bit-exact with the in-process fabric — the transport must hide
//     every recoverable fault;
//   - kill-worker iterations SIGKILL one worker mid-run and require
//     every survivor to exit nonzero with a typed diagnosis within
//     the failure detector's bound — an unrecoverable fault must
//     fail fast, not hang;
//   - kill-coordinator iterations sever every coordinator connection
//     mid-run and require the same of all workers;
//   - heal-worker iterations (apps with an elastic entry point)
//     SIGKILL one worker of an elastic run and require the launcher to
//     recover from the latest checkpoint and finish bit-exact — the
//     failure story must extend past diagnosis into repair.
//
// Every iteration's fault schedule derives deterministically from
// -seed, so a failure report names the exact schedule to replay.

// chaosSuspect is the failure-detection timeout chaos workers run
// with; kills must be diagnosed within twice this (plus process
// overhead).
const chaosSuspect = time.Second

// chaosSpec is the exec-fabric spec every chaos iteration starts from.
func chaosSpec() noderun.Spec {
	s := specFromFlags()
	s.Fabric = noderun.FabricExec
	return s
}

// refSum computes (once) the selected app's checksum on the in-process
// channel fabric — the bit-exactness reference for every recoverable
// iteration.
var refSumOnce struct {
	sync.Once
	sum uint64
}

func chaosRefSum() uint64 {
	refSumOnce.Do(func() {
		s := chaosSpec()
		s.Fabric = noderun.FabricLocal
		ref, err := noderun.RunLocal(s)
		if err != nil {
			panic(err)
		}
		refSumOnce.sum = ref.Check
	})
	return refSumOnce.sum
}

// chaosSchedule is the canonical recoverable schedule (the acceptance
// schedule: 2% drop, 1% dup, delays up to 5ms, at most one sever per
// link), seeded per iteration, with corruption added so the CRC path
// is exercised too.
func chaosSchedule(iterSeed uint64) *fault.Config {
	return &fault.Config{
		Seed:     iterSeed,
		Drop:     0.02,
		Dup:      0.01,
		Reorder:  0.01,
		Corrupt:  0.005,
		Delay:    0.2,
		DelayMax: 5 * time.Millisecond,
		Sever:    0.002,
		SeverMax: 1,
	}
}

// workerFailures formats every failed worker's diagnosis for a chaos
// error report.
func workerFailures(res *noderun.RunResult) string {
	if res == nil {
		return ""
	}
	var b strings.Builder
	for _, w := range res.Workers {
		if w.Err == "" {
			continue
		}
		fmt.Fprintf(&b, "\nworker %d: %s\nstderr:\n%s", w.Node, w.Err, w.Stderr)
	}
	return b.String()
}

// chaosRecoverable runs the fault-schedule iteration: every worker
// must exit zero and the reduced sum must match the in-process fabric
// bit-exactly.
func chaosRecoverable(iterSeed uint64) error {
	fc := chaosSchedule(iterSeed)
	s := chaosSpec()
	s.Faults = fc.String()
	s.Suspect = 20 * time.Second // generous: injected faults must recover, not trip detection
	var l noderun.Launcher
	res, err := l.Run(context.Background(), s)
	if err != nil {
		return fmt.Errorf("under schedule %q: %w%s", fc.String(), err, workerFailures(res))
	}
	if want := chaosRefSum(); res.Check != want {
		return fmt.Errorf("reduced sum %d, want %d (schedule %q)", res.Check, want, fc.String())
	}
	return nil
}

// diagnosed reports whether a failed worker's stderr shows a typed
// transport diagnosis rather than an arbitrary crash.
func diagnosed(stderr string) bool {
	return strings.Contains(stderr, "down") || // PeerDownError / CoordDownError
		strings.Contains(stderr, "failed to assemble")
}

// killSpec is chaosSpec tightened for fast failure detection and a run
// long enough that a kill lands mid-flight.
func killSpec() noderun.Spec {
	s := chaosSpec()
	s.Suspect = chaosSuspect
	s.Heartbeat = 250 * time.Millisecond
	s.CoordTimeout = 5 * time.Second
	s.CoordRPCTimeout = 2 * time.Second
	s.Params.Steps = 20 // long enough that the kill lands mid-run
	return s
}

// chaosKillWorker SIGKILLs one worker mid-run; every survivor must
// exit nonzero with a typed diagnosis within the detection bound (or
// finish first, agreeing on the reduced sum — agreement is enforced by
// the launcher).
func chaosKillWorker(iterSeed uint64, rng *rand.Rand) error {
	victim := rng.Intn(*nodes)
	killAfter := 200*time.Millisecond + time.Duration(rng.Int63n(int64(700*time.Millisecond)))
	l := noderun.Launcher{Hooks: noderun.Hooks{
		WorkerStarted: func(node int, kill func()) {
			if node == victim {
				go func() {
					time.Sleep(killAfter)
					kill()
				}()
			}
		},
	}}
	start := time.Now()
	res, err := l.Run(context.Background(), killSpec())
	elapsed := time.Since(start)
	if res == nil {
		return err // the cluster never launched
	}
	// A *WorkerError is the expected shape (the victim, and survivors
	// diagnosing it); any other error — reduced-sum disagreement among
	// finished survivors — is a real failure.
	var we *noderun.WorkerError
	if err != nil && !errors.As(err, &we) {
		return err
	}
	for _, w := range res.Workers {
		if w.Node == victim || w.Err == "" {
			continue
		}
		if !diagnosed(w.Stderr) {
			return fmt.Errorf("worker %d died undiagnosed after killing worker %d at %v:\n%s",
				w.Node, victim, killAfter, w.Stderr)
		}
	}
	// The detection bound: kill + 2x suspect, plus generous process
	// overhead (spawn, join, dial budget) — a hang would blow well past
	// this.
	if bound := killAfter + 2*chaosSuspect + 20*time.Second; elapsed > bound {
		return fmt.Errorf("survivors took %v to fail, over the %v bound", elapsed, bound)
	}
	return nil
}

// healSpec is killSpec with elastic recovery on: the same mid-run
// SIGKILL, but the run must heal instead of failing fast.
func healSpec() noderun.Spec {
	s := killSpec()
	s.Elastic = true
	return s
}

// healRef computes (once) the heal spec's undisturbed checksum on the
// in-process fabric — the bit-exactness bar a healed run must clear.
var healRefOnce struct {
	sync.Once
	sum uint64
	err error
}

func chaosHealRef() (uint64, error) {
	healRefOnce.Do(func() {
		s := healSpec()
		s.Fabric = noderun.FabricLocal
		s.Elastic = false
		ref, err := noderun.RunLocal(s)
		if err != nil {
			healRefOnce.err = err
			return
		}
		healRefOnce.sum = ref.Check
	})
	return healRefOnce.sum, healRefOnce.err
}

// chaosHealWorker SIGKILLs one worker mid-run of an elastic run. Where
// the kill-worker iteration demands fast typed failure, this one
// demands recovery: the launcher must start a new generation restored
// from the latest complete checkpoint, finish the run, and produce a
// reduced sum bit-identical to the undisturbed in-process reference.
func chaosHealWorker(iterSeed uint64, rng *rand.Rand) error {
	victim := rng.Intn(*nodes)
	killAfter := 200*time.Millisecond + time.Duration(rng.Int63n(int64(700*time.Millisecond)))
	var once sync.Once
	l := noderun.Launcher{Hooks: noderun.Hooks{
		WorkerStarted: func(node int, kill func()) {
			if node == victim {
				// First epoch only: the healed generations must survive.
				once.Do(func() {
					go func() {
						time.Sleep(killAfter)
						kill()
					}()
				})
			}
		},
	}}
	res, err := l.Run(context.Background(), healSpec())
	if err != nil {
		return fmt.Errorf("elastic run did not heal after killing worker %d at %v: %w%s",
			victim, killAfter, err, workerFailures(res))
	}
	want, err := chaosHealRef()
	if err != nil {
		return err
	}
	if res.Check != want {
		return fmt.Errorf("healed reduced sum %d, undisturbed reference %d (killed worker %d at %v)",
			res.Check, want, victim, killAfter)
	}
	if res.Recovered < 1 {
		return fmt.Errorf("kill of worker %d at %v landed after the run finished (epochs=%d); run too short",
			victim, killAfter, res.Epochs)
	}
	return nil
}

// chaosKillCoord severs every coordinator connection mid-run (and
// closes its listener); every worker must exit nonzero with a typed
// CoordDownError diagnosis.
func chaosKillCoord(iterSeed uint64, rng *rand.Rand) error {
	killAfter := 200*time.Millisecond + time.Duration(rng.Int63n(int64(700*time.Millisecond)))
	l := noderun.Launcher{Hooks: noderun.Hooks{
		CoordStarted: func(c *noderun.Coord) {
			go func() {
				time.Sleep(killAfter)
				c.Kill() // no new connections, sever established ones
			}()
		},
	}}
	start := time.Now()
	res, err := l.Run(context.Background(), killSpec())
	elapsed := time.Since(start)
	if res == nil {
		return err
	}
	var we *noderun.WorkerError
	if err != nil && !errors.As(err, &we) {
		return err
	}
	finished := 0
	for _, w := range res.Workers {
		if w.Err == "" {
			finished++ // run beat the kill; allowed, but not for everyone
			continue
		}
		if !diagnosed(w.Stderr) {
			return fmt.Errorf("worker %d died undiagnosed after coordinator kill at %v:\n%s", w.Node, killAfter, w.Stderr)
		}
	}
	if finished == *nodes {
		return fmt.Errorf("all workers finished before the coordinator kill at %v landed; run too short", killAfter)
	}
	if bound := killAfter + 2*chaosSuspect + 20*time.Second; elapsed > bound {
		return fmt.Errorf("workers took %v to fail, over the %v bound", elapsed, bound)
	}
	return nil
}

// runChaos iterates the chaos modes until -duration expires, always
// completing at least one full cycle. Apps with an elastic entry point
// get a fourth, heal-worker kind: the same mid-run kill, but the run
// must recover instead of failing fast. Iteration schedules derive
// from -seed, so `-chaos -seed N` replays the same sequence.
func runChaos() error {
	// The reference run exercises the registry before any forked
	// iteration does, so a bad -app/-model is a one-line error.
	a, err := harness.LookupApp(*app)
	if err != nil {
		return err
	}
	type kind struct {
		name string
		run  func(uint64, *rand.Rand) error
	}
	kinds := []kind{
		{"recoverable", func(s uint64, _ *rand.Rand) error { return chaosRecoverable(s) }},
		{"kill-worker", chaosKillWorker},
		{"kill-coordinator", chaosKillCoord},
	}
	if a.Elastic != nil {
		kinds = append(kinds, kind{"heal-worker", chaosHealWorker})
	} else {
		fmt.Printf("chaos: app %q has no elastic entry point; skipping heal-worker iterations\n", *app)
	}
	rng := rand.New(rand.NewSource(int64(*seed)))
	deadline := time.Now().Add(*duration)
	iter := 0
	for {
		iter++
		iterSeed := *seed*1_000_003 + uint64(iter)
		k := kinds[(iter-1)%len(kinds)]
		if err := k.run(iterSeed, rng); err != nil {
			return fmt.Errorf("chaos iteration %d (%s, seed %d): %w", iter, k.name, iterSeed, err)
		}
		fmt.Printf("chaos: iteration %d (%s, seed %d) ok\n", iter, k.name, iterSeed)
		if iter >= len(kinds) && !time.Now().Before(deadline) {
			break
		}
	}
	fmt.Printf("chaos: PASS (%d iterations)\n", iter)
	return nil
}
