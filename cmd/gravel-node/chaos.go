package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"gravel"
	"gravel/internal/harness"
	"gravel/internal/transport"
	"gravel/internal/transport/fault"
)

// The chaos harness proves the distributed runtime's failure story
// end to end, with real processes:
//
//   - recoverable iterations run the 4-process GUPS smoke under a
//     seeded fault schedule (drops, duplicates, delays, reordering,
//     corruption, severs) and require the reduced sum to stay
//     bit-exact with the in-process fabric — the transport must hide
//     every recoverable fault;
//   - kill-worker iterations SIGKILL one worker mid-run and require
//     every survivor to exit nonzero with a typed diagnosis within
//     the failure detector's bound — an unrecoverable fault must
//     fail fast, not hang;
//   - kill-coordinator iterations sever every coordinator connection
//     mid-run and require the same of all workers.
//
// Every iteration's fault schedule derives deterministically from
// -seed, so a failure report names the exact schedule to replay.

// chaosSuspect is the failure-detection timeout chaos workers run
// with; kills must be diagnosed within twice this (plus process
// overhead).
const chaosSuspect = time.Second

// workerResult is one forked worker's outcome.
type workerResult struct {
	res    result
	err    error
	stderr string
}

// forkWorkers runs one worker process per node against coordAddr with
// the given extra flags and waits for them all. kill, when >= 0, names
// a node whose process is SIGKILLed after killAfter.
func forkWorkers(coordAddr string, extra []string, kill int, killAfter time.Duration) ([]workerResult, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	out := make([]workerResult, *nodes)
	var wg sync.WaitGroup
	for i := 0; i < *nodes; i++ {
		args := append(workerArgs(i, coordAddr), extra...)
		cmd := exec.Command(exe, args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		var stdout bytes.Buffer
		cmd.Stdout = &stdout
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("worker %d: %w", i, err)
		}
		if i == kill {
			go func() {
				time.Sleep(killAfter)
				cmd.Process.Kill()
			}()
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := cmd.Wait()
			out[i].stderr = stderr.String()
			if err != nil {
				out[i].err = err
				return
			}
			out[i].err = unmarshalResult(stdout.Bytes(), &out[i].res)
		}(i)
	}
	wg.Wait()
	return out, nil
}

func unmarshalResult(b []byte, r *result) error {
	if err := json.Unmarshal(b, r); err != nil {
		return fmt.Errorf("bad worker output %q: %w", string(b), err)
	}
	return nil
}

// startCoordinator runs an in-process rendezvous coordinator and
// returns it with its address and a stopper.
func startCoordinator() (*transport.Coordinator, string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, err
	}
	c := transport.NewCoordinator(*nodes)
	go c.Serve(ln)
	stop := func() { ln.Close() }
	go func() {
		<-c.Done()
		ln.Close()
	}()
	return c, ln.Addr().String(), stop, nil
}

// refSum computes (once) the selected app's checksum on the in-process
// channel fabric — the bit-exactness reference for every recoverable
// iteration.
var refSumOnce struct {
	sync.Once
	sum uint64
}

func chaosRefSum() uint64 {
	refSumOnce.Do(func() {
		ref := gravel.New(gravel.Config{Model: *model, Nodes: *nodes})
		refSumOnce.sum = harness.MustApp(*app).Run(ref, workerParams()).Check
		ref.Close()
	})
	return refSumOnce.sum
}

// chaosSchedule is the canonical recoverable schedule (the acceptance
// schedule: 2% drop, 1% dup, delays up to 5ms, at most one sever per
// link), seeded per iteration, with corruption added so the CRC path
// is exercised too.
func chaosSchedule(iterSeed uint64) *fault.Config {
	return &fault.Config{
		Seed:     iterSeed,
		Drop:     0.02,
		Dup:      0.01,
		Reorder:  0.01,
		Corrupt:  0.005,
		Delay:    0.2,
		DelayMax: 5 * time.Millisecond,
		Sever:    0.002,
		SeverMax: 1,
	}
}

// chaosRecoverable runs the fault-schedule iteration: every worker
// must exit zero and the reduced sum must match the in-process fabric
// bit-exactly.
func chaosRecoverable(iterSeed uint64) error {
	fc := chaosSchedule(iterSeed)
	_, addr, stop, err := startCoordinator()
	if err != nil {
		return err
	}
	defer stop()
	results, err := forkWorkers(addr, []string{
		"-faults", fc.String(),
		"-suspect", "20s", // generous: injected faults must recover, not trip detection
	}, -1, 0)
	if err != nil {
		return err
	}
	want := chaosRefSum()
	var localTotal uint64
	for i, r := range results {
		if r.err != nil {
			return fmt.Errorf("worker %d failed under schedule %q: %v\nstderr:\n%s", i, fc.String(), r.err, r.stderr)
		}
		localTotal += r.res.LocalSum
		if r.res.TotalSum != want {
			return fmt.Errorf("worker %d reduced sum %d, want %d (schedule %q)", i, r.res.TotalSum, want, fc.String())
		}
	}
	if localTotal != want {
		return fmt.Errorf("local sums add to %d, want %d (schedule %q)", localTotal, want, fc.String())
	}
	return nil
}

// diagnosed reports whether a failed worker's stderr shows a typed
// transport diagnosis rather than an arbitrary crash.
func diagnosed(stderr string) bool {
	return strings.Contains(stderr, "down") || // PeerDownError / CoordDownError
		strings.Contains(stderr, "failed to assemble")
}

// chaosKillWorker SIGKILLs one worker mid-run; every survivor must
// exit nonzero with a typed diagnosis within the detection bound.
func chaosKillWorker(iterSeed uint64, rng *rand.Rand) error {
	_, addr, stop, err := startCoordinator()
	if err != nil {
		return err
	}
	defer stop()
	victim := rng.Intn(*nodes)
	killAfter := 200*time.Millisecond + time.Duration(rng.Int63n(int64(700*time.Millisecond)))
	start := time.Now()
	results, err := forkWorkers(addr, []string{
		"-suspect", chaosSuspect.String(),
		"-heartbeat", "250ms",
		"-coord-timeout", "5s",
		"-coord-rpc-timeout", "2s",
		"-steps", "20", // long enough that the kill lands mid-run
	}, victim, killAfter)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	var finishedSums []uint64
	for i, r := range results {
		if i == victim {
			continue
		}
		if r.err == nil {
			// The whole run finished before the kill landed; nothing to
			// diagnose, but finished survivors must agree on the sum.
			finishedSums = append(finishedSums, r.res.TotalSum)
			continue
		}
		if !diagnosed(r.stderr) {
			return fmt.Errorf("worker %d died undiagnosed after killing worker %d at %v:\n%s",
				i, victim, killAfter, r.stderr)
		}
	}
	for _, s := range finishedSums {
		if s != finishedSums[0] {
			return fmt.Errorf("survivors disagree on the reduced sum: %v", finishedSums)
		}
	}
	// The detection bound: kill + 2x suspect, plus generous process
	// overhead (spawn, join, dial budget) — a hang would blow well past
	// this.
	if bound := killAfter + 2*chaosSuspect + 20*time.Second; elapsed > bound {
		return fmt.Errorf("survivors took %v to fail, over the %v bound", elapsed, bound)
	}
	return nil
}

// chaosKillCoord severs every coordinator connection mid-run (and
// closes its listener); every worker must exit nonzero with a typed
// CoordDownError diagnosis.
func chaosKillCoord(iterSeed uint64, rng *rand.Rand) error {
	c, addr, stop, err := startCoordinator()
	if err != nil {
		return err
	}
	defer stop()
	killAfter := 200*time.Millisecond + time.Duration(rng.Int63n(int64(700*time.Millisecond)))
	go func() {
		time.Sleep(killAfter)
		stop()   // no new connections
		c.Kill() // sever established ones
	}()
	start := time.Now()
	results, err := forkWorkers(addr, []string{
		"-suspect", chaosSuspect.String(),
		"-heartbeat", "250ms",
		"-coord-timeout", "5s",
		"-coord-rpc-timeout", "2s",
		"-steps", "20",
	}, -1, 0)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	finished := 0
	for i, r := range results {
		if r.err == nil {
			finished++ // run beat the kill; allowed, but not for everyone
			continue
		}
		if !diagnosed(r.stderr) {
			return fmt.Errorf("worker %d died undiagnosed after coordinator kill at %v:\n%s", i, killAfter, r.stderr)
		}
	}
	if finished == *nodes {
		return fmt.Errorf("all workers finished before the coordinator kill at %v landed; run too short", killAfter)
	}
	if bound := killAfter + 2*chaosSuspect + 20*time.Second; elapsed > bound {
		return fmt.Errorf("workers took %v to fail, over the %v bound", elapsed, bound)
	}
	return nil
}

// runChaos iterates the three chaos modes until -duration expires,
// always completing at least one full cycle. Iteration schedules
// derive from -seed, so `-chaos -seed N` replays the same sequence.
func runChaos() error {
	rng := rand.New(rand.NewSource(int64(*seed)))
	deadline := time.Now().Add(*duration)
	iter := 0
	for {
		iter++
		iterSeed := *seed*1_000_003 + uint64(iter)
		var err error
		var kind string
		switch iter % 3 {
		case 1:
			kind = "recoverable"
			err = chaosRecoverable(iterSeed)
		case 2:
			kind = "kill-worker"
			err = chaosKillWorker(iterSeed, rng)
		default:
			kind = "kill-coordinator"
			err = chaosKillCoord(iterSeed, rng)
		}
		if err != nil {
			return fmt.Errorf("chaos iteration %d (%s, seed %d): %w", iter, kind, iterSeed, err)
		}
		fmt.Printf("chaos: iteration %d (%s, seed %d) ok\n", iter, kind, iterSeed)
		if iter >= 3 && !time.Now().Before(deadline) {
			break
		}
	}
	fmt.Printf("chaos: PASS (%d iterations)\n", iter)
	return nil
}
