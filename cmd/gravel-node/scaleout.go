package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gravel/internal/cliflags"
	"gravel/internal/noderun"
	"gravel/internal/obs"
)

// The scale-out bench drives a live, planned membership change through
// the elastic launcher: a pagerank run starts on 2 workers, and once a
// complete checkpoint cut exists the run is rescaled to 4 — the first
// epoch unwinds at a step barrier, the saved ranks are re-sharded over
// the new membership, and the run finishes. The bench reports
// per-epoch throughput (vertex-updates/sec, derived from the
// checkpoint cadence: one cut per iteration) and verifies the scaled
// run stays bit-identical to the undisturbed single-process reference.

// ScaleOutBench is the BENCH_PR7.json document.
type ScaleOutBench struct {
	Bench        string          `json:"bench"`
	App          string          `json:"app"`
	Model        string          `json:"model"`
	Verts        int             `json:"verts"`
	Iters        int             `json:"iters"`
	FromNodes    int             `json:"from_nodes"`
	ToNodes      int             `json:"to_nodes"`
	Check        uint64          `json:"check"`
	RefCheck     uint64          `json:"ref_check"`
	BitIdentical bool            `json:"bit_identical"`
	Recovered    int             `json:"recovered"`
	WallMs       float64         `json:"wall_ms"`
	Epochs       []ScaleOutEpoch `json:"epochs"`
}

// ScaleOutEpoch is one membership epoch's share of the run.
type ScaleOutEpoch struct {
	Gen     uint32  `json:"gen"`
	Nodes   int     `json:"nodes"`
	Outcome string  `json:"outcome"`
	WallMs  float64 `json:"wall_ms"`
	// Iters is the epoch's completed iterations, derived from the
	// checkpoint cuts the epoch produced (cadence 1 cut/iteration; the
	// final iteration does not checkpoint and is credited to the last
	// epoch).
	Iters int `json:"iters"`
	// VertexUpdatesPerSec is Iters*Verts normalized by the epoch wall.
	VertexUpdatesPerSec float64 `json:"vertex_updates_per_sec"`
}

// scaleOutSpec is the benched workload: in-process workers over real
// TCP, checkpointing at every iteration barrier so the rescale cut is
// always fresh.
func scaleOutSpec() noderun.Spec {
	s := noderun.Spec{App: "pagerank", Model: *model, Nodes: 2, Fabric: noderun.FabricTCP, Elastic: true}
	s.Params.Verts = *verts
	if s.Params.Verts == 0 {
		s.Params.Verts = 2048
	}
	s.Params.Iters = *iters
	if s.Params.Iters == 0 {
		s.Params.Iters = 30
	}
	s.Params.Scale = 1
	s.Suspect = 5 * time.Second
	s.Heartbeat = 250 * time.Millisecond
	s.CoordTimeout = 10 * time.Second
	s.CoordRPCTimeout = 5 * time.Second
	return s
}

// runScaleOut executes the 2 -> 4 sweep and writes the JSON report.
func runScaleOut(jsonPath string) error {
	if jsonPath == "" {
		jsonPath = "BENCH_PR7.json"
	}
	s := scaleOutSpec()

	// Undisturbed reference on the in-process fabric.
	sref := s
	sref.Fabric = noderun.FabricLocal
	sref.Elastic = false
	ref, err := noderun.RunLocal(sref)
	if err != nil {
		return err
	}

	rec := obs.Start(obs.Options{})
	defer obs.Stop()

	// Per-epoch iteration attribution: sample the checkpoint counter at
	// each epoch boundary; one complete cut is one iteration's worth of
	// per-worker saves.
	type boundary struct {
		nodes int
		cuts  int64
	}
	var mu sync.Mutex
	var bounds []boundary
	var once sync.Once
	l := noderun.Launcher{Hooks: noderun.Hooks{
		EpochStarted: func(gen uint32, nodes int, rescale func(int)) {
			mu.Lock()
			bounds = append(bounds, boundary{nodes: nodes, cuts: rec.Count(obs.KCheckpoint)})
			mu.Unlock()
			if nodes != 2 {
				return
			}
			go func() {
				// Rescale as soon as a complete 2-node cut exists, so the
				// 4-node epoch restores instead of cold-starting.
				for rec.Count(obs.KCheckpoint) < 2*int64(nodes) {
					time.Sleep(200 * time.Microsecond)
				}
				once.Do(func() { rescale(4) })
			}()
		},
	}}
	start := time.Now()
	res, err := l.Run(context.Background(), s)
	if err != nil {
		return fmt.Errorf("scale-out run failed: %w", err)
	}
	wall := time.Since(start)
	finalCuts := rec.Count(obs.KCheckpoint)

	doc := ScaleOutBench{
		Bench:        "elastic-scaleout",
		App:          s.App,
		Model:        s.Model,
		Verts:        s.Params.Verts,
		Iters:        s.Params.Iters,
		FromNodes:    2,
		ToNodes:      4,
		Check:        res.Check,
		RefCheck:     ref.Check,
		BitIdentical: res.Check == ref.Check,
		Recovered:    res.Recovered,
		WallMs:       float64(wall.Nanoseconds()) / 1e6,
	}
	mu.Lock()
	defer mu.Unlock()
	credited := 0
	for i, e := range res.EpochLog {
		ep := ScaleOutEpoch{Gen: e.Gen, Nodes: e.Nodes, Outcome: e.Outcome,
			WallMs: float64(e.WallNs) / 1e6}
		if i < len(bounds) {
			end := finalCuts
			if i+1 < len(bounds) {
				end = bounds[i+1].cuts
			}
			ep.Iters = int(end-bounds[i].cuts) / e.Nodes
		}
		if i == len(res.EpochLog)-1 {
			// The final iteration never checkpoints; the closing epoch also
			// re-runs nothing past the restore point, so credit it the
			// remainder.
			if rest := s.Params.Iters - credited - ep.Iters; rest > 0 && ep.Iters+rest <= s.Params.Iters {
				ep.Iters += rest
			}
		}
		credited += ep.Iters
		if e.WallNs > 0 {
			ep.VertexUpdatesPerSec = float64(ep.Iters) * float64(s.Params.Verts) / (float64(e.WallNs) / 1e9)
		}
		doc.Epochs = append(doc.Epochs, ep)
	}
	if !doc.BitIdentical {
		return fmt.Errorf("scaled-out checksum %d diverged from reference %d", res.Check, ref.Check)
	}
	if err := cliflags.WriteJSON(jsonPath, doc); err != nil {
		return err
	}
	for _, ep := range doc.Epochs {
		fmt.Printf("scaleout: gen %d, %d nodes, %d iters in %.1fms (%.0f vertex-updates/s, %s)\n",
			ep.Gen, ep.Nodes, ep.Iters, ep.WallMs, ep.VertexUpdatesPerSec, ep.Outcome)
	}
	fmt.Printf("scaleout: PASS bit-identical check %d across %d epochs -> %s\n", res.Check, len(doc.Epochs), jsonPath)
	return nil
}
